#!/usr/bin/env python3
"""Separate and online analysis — the bidirectional solver's edge (§5.1).

"Bidirectional solving enables separate analysis, because the closure
rules do not need all sources and sinks to be present ... constraints
can be solved online."  This example analyzes a *library* on its own,
then links two different *clients* against the already-solved library
constraints, adding their constraints incrementally and querying after
each step — no re-solving from scratch.

Run:  python examples/separate_analysis.py
"""

from repro import AnnotatedConstraintSystem
from repro.dfa.gallery import privilege_machine


def analyze_library(system: AnnotatedConstraintSystem):
    """The library exports `run_tool`: it execs, and on some path first
    drops privilege.  Its constraints are solved before any client
    exists — the entry/exit variables are the linking interface."""
    entry = system.var("lib::run_tool::entry")
    exit_ = system.var("lib::run_tool::exit")
    mid = system.var("lib::run_tool::mid")
    # path 1: drop privilege, then exec
    system.add(entry, mid, "seteuid_nonzero", info="lib: seteuid(getuid())")
    system.add(mid, exit_, "execl", info="lib: execl(tool)")
    # path 2: exec directly (the dangerous path)
    system.add(entry, exit_, "execl", info="lib: execl(tool) [no drop]")
    return entry, exit_


def main() -> None:
    system = AnnotatedConstraintSystem(privilege_machine())
    o1 = system.constructor("call1", 1)
    o2 = system.constructor("call2", 1)
    pc = system.constant("pc")

    print("--- phase 1: analyze the library alone ---")
    entry, exit_ = analyze_library(system)
    facts_after_library = system.solver.fact_count()
    print(f"library solved: {facts_after_library} facts, "
          f"no clients linked yet")

    print()
    print("--- phase 2: link client A (calls run_tool unprivileged) ---")
    a0 = system.var("clientA::start")
    a1 = system.var("clientA::after")
    system.add(pc, a0, info="clientA entry")
    system.add(o1(a0), entry, info="clientA -> run_tool")
    system.add(o1.proj(1, exit_), a1, info="run_tool -> clientA")
    print(f"clientA violation: {system.reaches(a1, pc)} (expected False)")

    print()
    print("--- phase 3: link client B (acquires privilege first) ---")
    b0 = system.var("clientB::start")
    b1 = system.var("clientB::acquired")
    b2 = system.var("clientB::after")
    system.add(pc, b0, info="clientB entry")
    system.add(b0, b1, "seteuid_zero", info="clientB: seteuid(0)")
    system.add(o2(b1), entry, info="clientB -> run_tool")
    system.add(o2.proj(1, exit_), b2, info="run_tool -> clientB")
    print(f"clientB violation: {system.reaches(b2, pc)} (expected True)")
    print(f"clientA still clean: {not system.reaches(a1, pc)} "
          "(contexts stay separate)")

    annotation = next(
        ann
        for ann in system.annotations_of(b2, pc)
        if system.algebra.is_accepting(ann)
    )
    print()
    print("witness for client B:")
    for step in system.witness(b2, pc, annotation):
        print(f"    {step}")

    print()
    grew = system.solver.fact_count() - facts_after_library
    print(f"linking both clients added {grew} facts on top of the "
          "already-solved library — no re-analysis of the library body.")
    assert not system.reaches(a1, pc)
    assert system.reaches(b2, pc)


if __name__ == "__main__":
    main()
