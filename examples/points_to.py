#!/usr/bin/env python3
"""Inclusion-based points-to analysis as set constraints.

Andersen's analysis is the original large-scale application of the
cubic set-constraint fragment the paper builds on; here it runs on
mini-C via the ``ref(get, set)`` constructor encoding (contravariant
write field), cross-checked against a textbook worklist solver.

Run:  python examples/points_to.py
"""

from repro.cfg.parser import parse_program
from repro.pointsto import AndersenAnalysis, NaiveAndersen, extract_pointer_ops

PROGRAM = """
void store(int **slot, int *value) {
  *slot = value;
}

int *pick(int *a, int *b) {
  if (c) { return a; }
  return b;
}

int main() {
  int x;
  int y;
  int *p = &x;
  int *q = &y;
  int *chosen = pick(p, q);
  int *buffer = malloc(64);
  store(&p, buffer);          // p now may point into the heap
  int *mirror = p;
  return 0;
}
"""


def main() -> None:
    program = parse_program(PROGRAM)
    analysis = AndersenAnalysis(program)

    interesting = [
        "main::p",
        "main::q",
        "main::chosen",
        "main::buffer",
        "main::mirror",
    ]
    print("points-to sets (set-constraint solver):")
    for location in interesting:
        targets = ", ".join(sorted(analysis.points_to(location))) or "∅"
        print(f"  pt({location:14}) = {{ {targets} }}")

    print()
    print("alias queries:")
    for left, right in [
        ("main::p", "main::mirror"),
        ("main::chosen", "main::q"),
        ("main::buffer", "main::q"),
    ]:
        verdict = analysis.may_alias(left, right)
        print(f"  may-alias({left}, {right}) = {verdict}")

    ops, locations = extract_pointer_ops(program)
    naive = NaiveAndersen(ops, locations)
    agreement = analysis.solution() == naive.solution()
    print()
    print(f"agrees with the textbook worklist solver on all "
          f"{len(locations)} locations: {agreement}")
    assert agreement


if __name__ == "__main__":
    main()
