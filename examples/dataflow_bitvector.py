#!/usr/bin/env python3
"""Interprocedural bit-vector dataflow as regular annotations (§3.3).

Gen/kill dataflow facts map onto the n-bit gen/kill language: each CFG
edge is annotated with a tuple of 1-bit representative functions, and a
fact may hold at a program point iff some realizable (call/return
matched) path's annotation accepts on that bit.  The classic
functional-approach solver runs beside it as a cross-check.

Run:  python examples/dataflow_bitvector.py
"""

from repro.cfg import build_cfg
from repro.dataflow import (
    AnnotatedBitVectorAnalysis,
    FunctionalBitVectorAnalysis,
    privilege_fact_problem,
)

PROGRAM = """
void drop() { seteuid(getuid()); }
void spawn() { execl("/bin/worker", 0); }
int main() {
  seteuid(0);
  if (config_safe) {
    drop();
  }
  spawn();          // may run privileged: the fact may hold here
  drop();
  spawn();          // privilege definitely gone on every path
  return 0;
}
"""


def main() -> None:
    cfg = build_cfg(PROGRAM)
    problem = privilege_fact_problem()

    annotated = AnnotatedBitVectorAnalysis(cfg, problem)
    classic = FunctionalBitVectorAnalysis(cfg, problem)

    print("fact: 'process holds root privilege' (gen: seteuid(0), "
          "kill: seteuid(other))")
    print()
    print(f"{'program point':34} {'annotated':>10} {'classic':>9}")
    spawn_sites = [
        node
        for node in cfg.all_nodes()
        if node.kind == "call" and node.call.callee == "spawn"
    ]
    for node in spawn_sites:
        may_a = "may-hold" if 0 in annotated.may_hold(node) else "clear"
        may_c = "may-hold" if 0 in classic.may_hold(node) else "clear"
        print(f"{node.describe():34} {may_a:>10} {may_c:>9}")

    agreement = annotated.solution() == classic.solution()
    print()
    print(f"solvers agree on every one of {cfg.node_count()} nodes: {agreement}")
    assert agreement

    first, second = spawn_sites
    assert annotated.may_hold(first) == {0}, "first spawn may be privileged"
    assert annotated.may_hold(second) == frozenset(), "second spawn is clean"
    print("first spawn() may run privileged; second cannot — the callee")
    print("summary of drop() kills the fact across the call, context-aware.")


if __name__ == "__main__":
    main()
