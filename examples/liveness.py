#!/usr/bin/env python3
"""Backward dataflow: live variables and dead-store detection.

Backward analyses run the same two interprocedural solvers over the
*reversed* CFG (the Section 6 call encoding dualizes cleanly).  This
example computes live variables and reports dead stores — assignments
whose value can never be observed.

Run:  python examples/liveness.py
"""

from repro.cfg import ast, build_cfg, reverse_cfg
from repro.dataflow import (
    AnnotatedBitVectorAnalysis,
    FunctionalBitVectorAnalysis,
    live_variable_problem,
)

PROGRAM = """
void log_value(int v) { emit(v); }
int main() {
  int a = 1;          // dead store: overwritten before any use
  int b = 2;
  a = b + 1;
  log_value(a);
  int c = a;          // dead store: c is never used
  b = 7;
  log_value(b);
  return 0;
}
"""

VARIABLES = ["a", "b", "c"]


def main() -> None:
    cfg = build_cfg(PROGRAM)
    reversed_cfg = reverse_cfg(cfg)
    problem = live_variable_problem(cfg, VARIABLES)
    analysis = AnnotatedBitVectorAnalysis(reversed_cfg, problem)
    classic = FunctionalBitVectorAnalysis(reversed_cfg, problem)
    assert analysis.solution() == classic.solution()

    print("dead stores (assigned value never observed):")
    found = []
    for node in cfg.all_nodes():
        stmt = node.stmt
        defined = None
        if isinstance(stmt, ast.Decl) and stmt.init is not None:
            defined = stmt.name
        elif isinstance(stmt, ast.ExprStmt) and isinstance(stmt.expr, ast.Assign):
            target = stmt.expr.target
            if isinstance(target, ast.Ident):
                defined = target.name
        if defined is None or defined not in VARIABLES:
            continue
        live_out = {problem.facts[i] for i in analysis.may_hold(node)}
        verdict = "DEAD STORE" if defined not in live_out else "live"
        print(f"  line {node.line}: {defined} = ...   -> {verdict} "
              f"(live-out: {sorted(live_out) or '∅'})")
        if verdict == "DEAD STORE":
            found.append((node.line, defined))

    assert (4, "a") in found, "the initial a=1 is dead"
    assert any(var == "c" for _line, var in found), "c is never used"
    assert not any(var == "b" and line == 5 for line, var in found)
    print()
    print(f"{len(found)} dead stores found; both solvers agree on every node.")


if __name__ == "__main__":
    main()
