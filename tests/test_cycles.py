"""Tests for online cycle elimination (repro.core.cycles).

The collapse is only sound because identity cycles give every member
the same least solution (id ∘ id = id), so the central property tested
here is *equivalence*: with elimination on and off, solvers must agree
on the canonical (identity-SCC-quotient) solved form and on every
verdict — across random systems, random programs, object and compiled
algebras, mark/rollback, budget interruption, persistence, and the
unidirectional and demand solvers.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import build_cfg
from repro.core.annotations import CompiledMonoidAlgebra, MonoidAlgebra
from repro.core.budget import Budget
from repro.core.cycles import UnionFind, find_identity_cycle
from repro.core.demand import DemandBackwardSolver, DemandForwardSolver
from repro.core.errors import SolverBudgetExceeded
from repro.core.persist import dump_solver, load_solver
from repro.core.solver import Solver
from repro.core.terms import Constructor, Variable, constant
from repro.core.unidirectional import AnnotatedGraph, BackwardSolver, ForwardSolver
from repro.dfa.gallery import one_bit_machine, privilege_machine
from repro.modelcheck import AnnotatedChecker, simple_privilege_property
from repro.synth import cycle_chain, solve_bidirectional
from tests.test_cross_validation import random_program


# ---------------------------------------------------------------------------
# union-find and the bounded detector
# ---------------------------------------------------------------------------


class TestUnionFind:
    def test_find_before_any_union_is_identity(self):
        uf = UnionFind()
        assert uf.find("x") == "x"

    def test_union_redirects_and_undo_restores(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert uf.find("b") == "a"
        assert uf.find("a") == "a"
        uf.undo_union("b")
        assert uf.find("b") == "b"

    def test_chains_resolve_transitively(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("a", "c")
        uf.union("d", "a")  # a itself loses later
        assert uf.find("b") == "d"
        assert uf.find("c") == "d"

    def test_no_compression_leaves_chain_undoable(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("d", "a")
        assert uf.find("b", compress=False) == "d"
        assert uf.parent["b"] == "a"  # chain intact
        uf.undo_union("a")
        assert uf.find("b", compress=False) == "a"

    def test_find_calls_counted(self):
        uf = UnionFind()
        uf.union("a", "b")
        before = uf.find_calls
        uf.find("b")
        assert uf.find_calls == before + 1


class TestFindIdentityCycle:
    def _pred(self, edges):
        # Buckets are iterables of (predecessor, annotation) pairs, the
        # shape both the bidirectional and unidirectional solvers keep.
        pred = {}
        for src, dst, ann in edges:
            pred.setdefault(dst, []).append((src, ann))
        return pred

    def test_finds_simple_back_path(self):
        # inserting a->b closes b -> ... -> a
        pred = self._pred([("b", "c", "id"), ("c", "a", "id")])
        cycle = find_identity_cycle(
            pred, lambda v: v, lambda a: a == "id", "a", "b", 64
        )
        assert cycle is not None
        assert set(cycle) == {"a", "b", "c"}

    def test_ignores_non_identity_edges(self):
        pred = self._pred([("b", "a", "sym")])
        assert (
            find_identity_cycle(
                pred, lambda v: v, lambda a: a == "id", "a", "b", 64
            )
            is None
        )

    def test_respects_bound(self):
        chain = [(f"n{i}", f"n{i + 1}", "id") for i in range(100)]
        pred = self._pred(chain)
        assert (
            find_identity_cycle(
                pred, lambda v: v, lambda a: a == "id", "n100", "n0", 10
            )
            is None
        )


# ---------------------------------------------------------------------------
# bidirectional solver: collapse behavior
# ---------------------------------------------------------------------------


def _ring_solver(cycle_elim=True):
    algebra = MonoidAlgebra(one_bit_machine())
    solver = Solver(algebra, cycle_elim=cycle_elim)
    a, b, c = Variable("A"), Variable("B"), Variable("C")
    solver.add(constant("k"), a, algebra.word("g"))
    solver.add(a, b)
    solver.add(b, c)
    solver.add(c, a)  # closes the identity ring
    return solver, (a, b, c)


class TestCollapse:
    def test_ring_merges_to_min_name(self):
        solver, (a, b, c) = _ring_solver()
        assert solver.stats.cycles_collapsed == 1
        assert solver.stats.vars_merged == 2
        assert solver.find(b) == a
        assert solver.find(c) == a

    def test_merged_vars_share_facts(self):
        solver, (a, b, c) = _ring_solver()
        for var in (a, b, c):
            assert set(solver.lower_bounds(a)) == set(solver.lower_bounds(var))

    def test_losers_stay_visible(self):
        solver, (a, b, c) = _ring_solver()
        assert {a, b, c} <= solver.variables()

    def test_canonical_form_matches_no_elim(self):
        on, _ = _ring_solver(cycle_elim=True)
        off, _ = _ring_solver(cycle_elim=False)
        assert set(on.canonical_facts()) == set(off.canonical_facts())
        assert off.stats.cycles_collapsed == 0

    def test_annotated_cycle_not_collapsed(self):
        algebra = MonoidAlgebra(one_bit_machine())
        solver = Solver(algebra)
        a, b = Variable("A"), Variable("B")
        solver.add(a, b, algebra.word("g"))
        solver.add(b, a, algebra.word("g"))  # cycle, but not identity
        assert solver.stats.cycles_collapsed == 0
        assert solver.find(b) == b


# ---------------------------------------------------------------------------
# equivalence on random systems (the soundness property)
# ---------------------------------------------------------------------------


def _random_constraints(seed: int):
    machine = privilege_machine()
    rng = random.Random(seed)
    symbols = sorted(machine.alphabet)
    n = rng.randrange(4, 10)
    variables = [Variable(f"v{i}") for i in range(n)]
    ctor = Constructor("w", 1)
    constants = [constant("k0"), constant("k1")]
    constraints = []
    for _ in range(rng.randrange(6, 24)):
        roll = rng.random()
        a, b = variables[rng.randrange(n)], variables[rng.randrange(n)]
        if roll < 0.55:
            # mostly identity edges, to actually provoke cycles
            word = [rng.choice(symbols)] if rng.random() < 0.3 else []
            constraints.append(("edge", a, b, word))
        elif roll < 0.7:
            constraints.append(("lower", rng.choice(constants), b, []))
        elif roll < 0.85:
            constraints.append(("wrap", a, b, []))
        else:
            constraints.append(("unwrap", a, b, []))
    return machine, ctor, constraints


def _load_solver(machine, ctor, constraints, cycle_elim, compiled=False):
    algebra = (
        CompiledMonoidAlgebra(machine) if compiled else MonoidAlgebra(machine)
    )
    solver = Solver(algebra, cycle_elim=cycle_elim)
    for kind, a, b, word in constraints:
        if kind == "edge":
            solver.add(a, b, algebra.word(word))
        elif kind == "lower":
            solver.add(a, b)
        elif kind == "wrap":
            solver.add(ctor(a), b)
        else:
            solver.add(ctor.proj(1, a), b)
    return solver


class TestEquivalence:
    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=60, deadline=None)
    def test_canonical_form_independent_of_elim(self, seed):
        machine, ctor, constraints = _random_constraints(seed)
        on = _load_solver(machine, ctor, constraints, cycle_elim=True)
        off = _load_solver(machine, ctor, constraints, cycle_elim=False)
        assert set(on.canonical_facts()) == set(off.canonical_facts()), seed
        assert len(on.inconsistencies) == len(off.inconsistencies), seed

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=40, deadline=None)
    def test_compiled_mode_equivalent_too(self, seed):
        machine, ctor, constraints = _random_constraints(seed)
        on = _load_solver(
            machine, ctor, constraints, cycle_elim=True, compiled=True
        )
        off = _load_solver(
            machine, ctor, constraints, cycle_elim=False, compiled=True
        )
        assert set(on.canonical_facts()) == set(off.canonical_facts()), seed

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_checker_verdict_independent_of_elim(self, seed):
        cfg = build_cfg(random_program(seed))
        prop = simple_privilege_property()
        on = AnnotatedChecker(cfg, prop, cycle_elim=True).check().has_violation
        off = AnnotatedChecker(
            cfg, prop, cycle_elim=False
        ).check().has_violation
        assert on == off, seed

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_object_and_compiled_agree_with_elim_on(self, seed):
        cfg = build_cfg(random_program(seed))
        prop = simple_privilege_property()
        obj = AnnotatedChecker(cfg, prop, compiled=False).check().has_violation
        comp = AnnotatedChecker(
            cfg, prop, compiled=True, record_reasons=False
        ).check().has_violation
        assert obj == comp, seed


# ---------------------------------------------------------------------------
# mark/rollback across a merge
# ---------------------------------------------------------------------------


class TestRollbackAcrossMerge:
    def _base(self):
        algebra = MonoidAlgebra(one_bit_machine())
        solver = Solver(algebra, cycle_elim=True)
        a, b, c = Variable("A"), Variable("B"), Variable("C")
        solver.add(constant("k"), a, algebra.word("g"))
        solver.add(a, b)
        solver.add(b, c)
        return solver, algebra, (a, b, c)

    def test_rollback_undoes_merge(self):
        solver, algebra, (a, b, c) = self._base()
        before = set(solver.canonical_facts())
        solver.mark()
        solver.add(c, a)  # triggers the collapse
        assert solver.stats.cycles_collapsed == 1
        assert solver.find(c) == a
        solver.rollback()
        assert solver.find(c) == c
        assert set(solver.canonical_facts()) == before

    def test_solver_usable_after_rollback(self):
        solver, algebra, (a, b, c) = self._base()
        solver.mark()
        solver.add(c, a)
        solver.rollback()
        solver.add(c, a)  # re-merge on the same cycle
        fresh, _ = _ring_solver(cycle_elim=True)
        assert set(solver.canonical_facts()) == set(fresh.canonical_facts())

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=40, deadline=None)
    def test_random_mark_rollback_restores_canonical_form(self, seed):
        machine, ctor, constraints = _random_constraints(seed)
        rng = random.Random(seed)
        cut = rng.randrange(len(constraints) + 1)
        solver = _load_solver(
            machine, ctor, constraints[:cut], cycle_elim=True
        )
        before = set(solver.canonical_facts())
        merged_before = dict(solver._uf.parent)
        solver.mark()
        for kind, a, b, word in constraints[cut:]:
            if kind == "edge":
                solver.add(a, b, solver.algebra.word(word))
            elif kind == "lower":
                solver.add(a, b)
            elif kind == "wrap":
                solver.add(ctor(a), b)
            else:
                solver.add(ctor.proj(1, a), b)
        solver.rollback()
        assert solver._uf.parent == merged_before, seed
        assert set(solver.canonical_facts()) == before, seed


# ---------------------------------------------------------------------------
# budget interruption and resumption
# ---------------------------------------------------------------------------


class TestBudgetWithElim:
    def _constraints(self):
        machine = privilege_machine()
        workload = cycle_chain(
            machine, n_cycles=4, cycle_size=6, seed=11, n_sources=4
        )
        algebra = MonoidAlgebra(machine)
        variables = [Variable(f"v{i}") for i in range(workload.n_vars)]
        batch = []
        for index in workload.sources:
            batch.append((Constructor(f"src{index}", 0)(), variables[index]))
        for src, dst, word in workload.edges:
            batch.append((variables[src], variables[dst], algebra.word(word)))
        return algebra, batch

    def test_interrupt_and_resume_matches_uninterrupted(self):
        algebra, batch = self._constraints()
        full = Solver(algebra, cycle_elim=True)
        full.add_many(batch)

        governed = Solver(
            algebra,
            cycle_elim=True,
            budget=Budget(max_steps=30, check_interval=1),
        )
        with pytest.raises(SolverBudgetExceeded):
            governed.add_many(batch)
        governed.resume(Budget(max_steps=10**9))
        assert set(governed.canonical_facts()) == set(full.canonical_facts())
        assert governed.fact_count() == full.fact_count()


# ---------------------------------------------------------------------------
# persistence round-trips with merges
# ---------------------------------------------------------------------------


class TestPersistenceWithMerges:
    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=30, deadline=None)
    def test_dump_load_preserves_canonical_form(self, seed):
        machine, ctor, constraints = _random_constraints(seed)
        solver = _load_solver(machine, ctor, constraints, cycle_elim=True)
        loaded = load_solver(dump_solver(solver))
        assert set(loaded.canonical_facts()) == set(solver.canonical_facts())
        assert loaded.fact_count() == solver.fact_count()
        assert loaded.variables() >= solver.variables()

    def test_merged_map_round_trips(self):
        solver, (a, b, c) = _ring_solver()
        loaded = load_solver(dump_solver(solver))
        assert loaded.find(b) == a
        assert loaded.find(c) == a
        assert set(loaded.lower_bounds(c)) == set(solver.lower_bounds(c))


# ---------------------------------------------------------------------------
# unidirectional and demand solvers
# ---------------------------------------------------------------------------


class TestUnidirectionalElim:
    def _graphs(self, seed):
        machine = privilege_machine()
        rng = random.Random(seed)
        symbols = sorted(machine.alphabet)
        n = rng.randrange(4, 10)
        graphs = [
            AnnotatedGraph(machine, cycle_elim=True),
            AnnotatedGraph(machine, cycle_elim=False),
        ]
        for _ in range(rng.randrange(6, 30)):
            a, b = rng.randrange(n), rng.randrange(n)
            word = (rng.choice(symbols),) if rng.random() < 0.4 else ()
            for graph in graphs:
                graph.add_edge(f"n{a}", f"n{b}", word)
        return graphs, n

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=40, deadline=None)
    def test_forward_states_agree(self, seed):
        (on, off), n = self._graphs(seed)
        fwd_on, fwd_off = ForwardSolver(on), ForwardSolver(off)
        fwd_on.solve(["n0"])
        fwd_off.solve(["n0"])
        for i in range(n):
            assert fwd_on.states_of(f"n{i}") == fwd_off.states_of(f"n{i}"), seed

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=40, deadline=None)
    def test_backward_classes_agree(self, seed):
        (on, off), n = self._graphs(seed)
        bwd_on, bwd_off = BackwardSolver(on), BackwardSolver(off)
        bwd_on.solve([f"n{n - 1}"])
        bwd_off.solve([f"n{n - 1}"])
        for i in range(n):
            assert bwd_on.classes_of(f"n{i}") == bwd_off.classes_of(f"n{i}"), seed


class TestDemandElim:
    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=40, deadline=None)
    def test_forward_demand_states_agree(self, seed):
        machine, ctor, constraints = _random_constraints(seed)
        on = DemandForwardSolver(machine, cycle_elim=True)
        off = DemandForwardSolver(machine, cycle_elim=False)
        variables = set()
        for kind, a, b, word in constraints:
            if kind == "lower":
                continue  # constant sources are seeded separately below
            variables.update((a, b))
            for solver in (on, off):
                if kind == "edge":
                    solver.add(a, b, word)
                elif kind == "wrap":
                    solver.add(ctor(a), b)
                elif kind == "unwrap":
                    solver.add(ctor.proj(1, a), b)
        if not variables:
            return
        seed_var = sorted(variables, key=lambda v: v.name)[0]
        on.add_source("c", seed_var)
        off.add_source("c", seed_var)
        sol_on, sol_off = on.solve("c"), off.solve("c")
        for var in variables:
            for matched in (False, True):
                assert sol_on.states_of(var, matched) == sol_off.states_of(
                    var, matched
                ), (seed, var)

    def test_backward_demand_resolves_merged_targets(self):
        machine = privilege_machine()
        solver = DemandBackwardSolver(machine)
        a, b, c, d = (Variable(n) for n in "ABCD")
        solver.add(a, b, ["seteuid_zero"])
        solver.add(b, c)
        solver.add(c, b)  # identity ring in the reversed graph too
        solver.add(c, d, ["execl"])
        solution = solver.solve_to(d)
        assert solver.can_reach(solution, a)


# ---------------------------------------------------------------------------
# the synthetic workload itself
# ---------------------------------------------------------------------------


class TestCycleChainWorkload:
    def test_generator_shape(self):
        machine = privilege_machine()
        workload = cycle_chain(machine, n_cycles=3, cycle_size=5, seed=0)
        assert workload.n_vars == 15
        # every ring contributes its cycle edges; two segment links
        identity = [e for e in workload.edges if not e[2]]
        annotated = [e for e in workload.edges if e[2]]
        assert len(annotated) == 2
        assert len(identity) >= 15

    def test_solved_forms_agree_and_rings_collapse(self):
        machine = privilege_machine()
        workload = cycle_chain(
            machine, n_cycles=4, cycle_size=6, seed=5, n_sources=3
        )
        on = solve_bidirectional(machine, workload, cycle_elim=True)
        off = solve_bidirectional(machine, workload, cycle_elim=False)
        assert on.stats.vars_merged > 0
        assert set(on.canonical_facts()) == set(off.canonical_facts())
