"""Unit and property tests for the DFA/NFA toolkit."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfa.automaton import DFA, EPSILON, NFA, AutomatonError, literal_dfa
from repro.dfa.regex import regex_to_dfa


def simple_dfa() -> DFA:
    """Accepts words over {a, b} with an odd number of a's."""
    return DFA.from_partial(
        n_states=2,
        alphabet={"a", "b"},
        start=0,
        accepting={1},
        edges=[(0, "a", 1), (0, "b", 0), (1, "a", 0), (1, "b", 1)],
    )


class TestDFABasics:
    def test_accepts(self):
        dfa = simple_dfa()
        assert dfa.accepts("a")
        assert dfa.accepts("bab")
        assert not dfa.accepts("")
        assert not dfa.accepts("aa")

    def test_run_from_state(self):
        dfa = simple_dfa()
        assert dfa.run("a", 0) == 1
        assert dfa.run("a", 1) == 0
        assert dfa.run("", 1) == 1

    def test_partial_completion_adds_sink(self):
        dfa = DFA.from_partial(
            n_states=2,
            alphabet={"a", "b"},
            start=0,
            accepting={1},
            edges=[(0, "a", 1)],
        )
        assert dfa.n_states == 3  # dead sink added
        assert dfa.accepts("a")
        assert not dfa.accepts("ab")
        assert not dfa.accepts("b")

    def test_total_table_required(self):
        with pytest.raises(AutomatonError):
            DFA(
                n_states=2,
                alphabet=frozenset({"a"}),
                start=0,
                accepting=frozenset({1}),
                delta={(0, "a"): 1},
            )

    def test_nondeterministic_edge_rejected(self):
        with pytest.raises(AutomatonError):
            DFA.from_partial(2, {"a"}, 0, {1}, [(0, "a", 1), (0, "a", 0)])

    def test_start_out_of_range(self):
        with pytest.raises(AutomatonError):
            DFA.from_partial(1, {"a"}, 5, set(), [(0, "a", 0)])

    def test_reachable_and_coreachable(self):
        dfa = DFA.from_partial(
            n_states=4,
            alphabet={"a"},
            start=0,
            accepting={1},
            edges=[(0, "a", 1), (1, "a", 1), (2, "a", 1), (3, "a", 3)],
        )
        assert 2 not in dfa.reachable_states()
        assert 3 not in dfa.coreachable_states()
        assert dfa.live_states() == {0, 1}

    def test_is_empty(self):
        empty = DFA.from_partial(1, {"a"}, 0, set(), [(0, "a", 0)])
        assert empty.is_empty()
        assert not simple_dfa().is_empty()

    def test_shortest_accepted(self):
        dfa = regex_to_dfa("ab|abc|b")
        assert dfa.shortest_accepted() == ("b",)
        assert literal_dfa("xyz", {"x", "y", "z"}).shortest_accepted() == (
            "x",
            "y",
            "z",
        )
        empty = DFA.from_partial(1, {"a"}, 0, set(), [(0, "a", 0)])
        assert empty.shortest_accepted() is None

    def test_shortest_accepted_epsilon(self):
        dfa = regex_to_dfa("a*")
        assert dfa.shortest_accepted() == ()

    def test_words_enumeration(self):
        dfa = regex_to_dfa("ab*")
        words = set(dfa.words(3))
        assert words == {("a",), ("a", "b"), ("a", "b", "b")}


class TestMinimization:
    def test_minimize_merges_equivalent_states(self):
        # Two redundant accepting states.
        dfa = DFA.from_partial(
            n_states=3,
            alphabet={"a"},
            start=0,
            accepting={1, 2},
            edges=[(0, "a", 1), (1, "a", 2), (2, "a", 1)],
        )
        assert dfa.minimize().n_states == 2

    def test_minimize_idempotent(self):
        dfa = regex_to_dfa("(a|b)*abb")
        once = dfa.minimize()
        twice = once.minimize()
        assert once.n_states == twice.n_states
        assert dict(once.delta) == dict(twice.delta)

    def test_equivalence_of_regexes(self):
        assert regex_to_dfa("a(b|c)").equivalent(regex_to_dfa("ab|ac"))
        assert not regex_to_dfa("ab").equivalent(regex_to_dfa("ba"))

    def test_canonical_classic(self):
        # (a|b)*abb has the classic 4-state minimal DFA.
        assert regex_to_dfa("(a|b)*abb").n_states == 4


class TestProducts:
    def test_intersection(self):
        even_b = DFA.from_partial(
            2, {"a", "b"}, 0, {0}, [(0, "a", 0), (0, "b", 1), (1, "a", 1), (1, "b", 0)]
        )
        odd_a = simple_dfa()
        both = odd_a.intersect(even_b)
        assert both.accepts("a")
        assert both.accepts("abb")
        assert not both.accepts("ab")
        assert not both.accepts("aab")

    def test_union(self):
        merged = regex_to_dfa("aa", alphabet={"a", "b"}).union(
            regex_to_dfa("bb", alphabet={"a", "b"})
        )
        assert merged.accepts("aa")
        assert merged.accepts("bb")
        assert not merged.accepts("ab")

    def test_alphabet_mismatch(self):
        with pytest.raises(AutomatonError):
            regex_to_dfa("a").product(regex_to_dfa("b"), lambda x, y: x and y)

    def test_complement(self):
        dfa = simple_dfa()
        comp = dfa.complement()
        for word in ["", "a", "ab", "aa", "bbb"]:
            assert dfa.accepts(word) != comp.accepts(word)


class TestReversal:
    def test_reverse_language(self):
        dfa = regex_to_dfa("abc")
        rev = dfa.reverse()
        assert rev.accepts("cba")
        assert not rev.accepts("abc")

    def test_reverse_involution(self):
        dfa = regex_to_dfa("a(b|c)*d")
        assert dfa.reverse().reverse().equivalent(dfa)


class TestNFA:
    def test_epsilon_closure(self):
        nfa = NFA.build(
            3, {"a"}, start=[0], accepting=[2], edges=[(0, EPSILON, 1), (1, "a", 2)]
        )
        assert nfa.epsilon_closure({0}) == {0, 1}
        assert nfa.accepts("a")
        assert not nfa.accepts("")

    def test_determinize_preserves_language(self):
        nfa = NFA.build(
            4,
            {"a", "b"},
            start=[0],
            accepting=[3],
            edges=[(0, "a", 1), (0, "a", 2), (1, "b", 3), (2, "a", 3)],
        )
        dfa = nfa.determinize()
        for word in ["ab", "aa", "a", "ba", "abb"]:
            assert nfa.accepts(word) == dfa.accepts(word)


# -- property tests ---------------------------------------------------------------

_words = st.lists(st.sampled_from(["a", "b"]), max_size=8).map(tuple)


@st.composite
def random_dfas(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    edges = [
        (s, sym, draw(st.integers(min_value=0, max_value=n - 1)))
        for s in range(n)
        for sym in ("a", "b")
    ]
    accepting = draw(st.sets(st.integers(min_value=0, max_value=n - 1)))
    return DFA.from_partial(n, {"a", "b"}, 0, accepting, edges)


@given(random_dfas(), _words)
@settings(max_examples=150, deadline=None)
def test_minimize_preserves_language(dfa, word):
    assert dfa.accepts(word) == dfa.minimize().accepts(word)


@given(random_dfas(), random_dfas(), _words)
@settings(max_examples=100, deadline=None)
def test_product_is_intersection(left, right, word):
    assert left.intersect(right).accepts(word) == (
        left.accepts(word) and right.accepts(word)
    )


@given(random_dfas(), _words)
@settings(max_examples=100, deadline=None)
def test_reverse_matches_reversed_words(dfa, word):
    assert dfa.accepts(word) == dfa.reverse().accepts(tuple(reversed(word)))


@given(random_dfas(), _words)
@settings(max_examples=100, deadline=None)
def test_complement_flips_membership(dfa, word):
    assert dfa.accepts(word) != dfa.complement().accepts(word)
