"""Tests for transition monoids and representative functions (§2.4).

The central correctness property is Theorem 2.1: two words are
``≡_M``-congruent iff they induce the same transition function, so the
monoid element of a word must agree with direct word simulation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfa.automaton import DFA
from repro.dfa.gallery import adversarial_machine, one_bit_machine, privilege_machine
from repro.dfa.monoid import (
    MonoidSizeExceeded,
    RepresentativeFunction,
    TransitionMonoid,
    monoid_size_lower_bound,
)
from repro.dfa.regex import regex_to_dfa


class TestRepresentativeFunction:
    def test_identity(self):
        identity = RepresentativeFunction((0, 1, 2))
        assert identity.is_identity()
        assert identity(1) == 1

    def test_composition_word_order(self):
        # f then g means f's word first: (f.then(g))(s) = g(f(s)).
        f = RepresentativeFunction((1, 0))
        g = RepresentativeFunction((0, 0))
        assert f.then(g).mapping == (0, 0)
        assert g.then(f).mapping == (1, 1)

    def test_immutable_and_hashable(self):
        fn = RepresentativeFunction((0, 1))
        with pytest.raises(AttributeError):
            fn.mapping = (1, 0)
        assert hash(fn) == hash(RepresentativeFunction((0, 1)))
        assert fn == RepresentativeFunction((0, 1))
        assert fn != RepresentativeFunction((1, 0))

    def test_associativity(self):
        f = RepresentativeFunction((1, 2, 0))
        g = RepresentativeFunction((0, 0, 2))
        h = RepresentativeFunction((2, 1, 1))
        assert f.then(g).then(h) == f.then(g.then(h))


class TestTransitionMonoid:
    def test_one_bit_monoid_is_three(self):
        # Section 3.3: F = {f_ε, f_g, f_k}.
        monoid = TransitionMonoid(one_bit_machine())
        assert monoid.size() == 3

    def test_one_bit_composition_laws(self):
        monoid = TransitionMonoid(one_bit_machine())
        f_g = monoid.generator("g")
        f_k = monoid.generator("k")
        # Gens and kills are idempotent; the last writer wins.
        assert f_g.then(f_g) == f_g
        assert f_k.then(f_k) == f_k
        assert f_g.then(f_k) == f_k
        assert f_k.then(f_g) == f_g

    def test_of_word_matches_direct_simulation(self):
        machine = regex_to_dfa("a(b|c)*d")
        monoid = TransitionMonoid(machine)
        for word in [(), ("a",), ("a", "b"), ("a", "b", "c", "d"), ("d", "a")]:
            fn = monoid.of_word(word)
            for state in range(machine.n_states):
                assert fn(state) == machine.run(word, state)

    def test_memoized_then(self):
        monoid = TransitionMonoid(one_bit_machine())
        f_g = monoid.generator("g")
        first = monoid.then(f_g, f_g)
        second = monoid.then(f_g, f_g)
        assert first is second  # memo returns the same object

    def test_accepting_functions(self):
        machine = privilege_machine()
        monoid = TransitionMonoid(machine)
        accepting = monoid.accepting_functions()
        assert accepting  # execl after seteuid(0) errs
        word = monoid.of_word(["seteuid_zero", "execl"])
        assert word in accepting
        assert not monoid.is_accepting(monoid.identity)

    def test_liveness_pruning(self):
        # In a(b)*: after 'd'... use a machine with a dead sink.
        machine = regex_to_dfa("ab")
        monoid = TransitionMonoid(machine)
        assert monoid.is_live(monoid.of_word(["a", "b"]))
        # 'ba' maps every reachable state to the dead sink.
        assert not monoid.is_live(monoid.of_word(["b", "a"]))

    def test_prefix_liveness(self):
        machine = regex_to_dfa("ab")
        monoid = TransitionMonoid(machine)
        assert monoid.is_prefix_live(monoid.of_word(["a"]))
        assert not monoid.is_prefix_live(monoid.of_word(["b"]))

    def test_lazy_mode(self):
        monoid = TransitionMonoid(one_bit_machine(), eager=False)
        f_g = monoid.generator("g")
        assert monoid.then(f_g, f_g) == f_g
        assert monoid.size() == 3  # enumerates on demand

    def test_max_size_guard(self):
        with pytest.raises(MonoidSizeExceeded):
            TransitionMonoid(adversarial_machine(5), max_size=100)

    def test_size_lower_bound_probe(self):
        machine = adversarial_machine(4)
        assert monoid_size_lower_bound(machine, budget=10_000) == 256
        assert monoid_size_lower_bound(machine, budget=50) == 50


class TestCongruenceCoarsenings:
    def test_forward_class_is_state(self):
        machine = regex_to_dfa("a(b|c)*d")
        monoid = TransitionMonoid(machine)
        for word in [("a",), ("a", "b"), ("a", "b", "d")]:
            assert monoid.forward_class(monoid.of_word(word)) == machine.run(word)

    def test_forward_classes_bounded_by_states(self):
        machine = adversarial_machine(4)
        monoid = TransitionMonoid(machine)
        # |F| = 256 but only |S| = 4 forward classes (Section 5.1).
        assert monoid.size() == 256
        assert len(monoid.forward_classes()) <= machine.n_states

    def test_backward_class_is_accepting_preimage(self):
        machine = regex_to_dfa("ab")
        monoid = TransitionMonoid(machine)
        cls = monoid.backward_class(monoid.of_word(["b"]))
        # exactly the states from which "b" reaches acceptance
        expected = frozenset(
            s
            for s in range(machine.n_states)
            if machine.run(["b"], s) in machine.accepting
        )
        assert cls == expected

    def test_backward_classes_smaller_than_monoid(self):
        machine = adversarial_machine(4)
        monoid = TransitionMonoid(machine)
        assert len(monoid.backward_classes()) < monoid.size()


# -- property tests: Theorem 2.1 via word simulation ---------------------------------


@st.composite
def machine_and_words(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    edges = [
        (s, sym, draw(st.integers(min_value=0, max_value=n - 1)))
        for s in range(n)
        for sym in ("x", "y")
    ]
    accepting = draw(st.sets(st.integers(min_value=0, max_value=n - 1)))
    machine = DFA.from_partial(n, {"x", "y"}, 0, accepting, edges)
    word1 = tuple(draw(st.lists(st.sampled_from(["x", "y"]), max_size=6)))
    word2 = tuple(draw(st.lists(st.sampled_from(["x", "y"]), max_size=6)))
    return machine, word1, word2


@given(machine_and_words())
@settings(max_examples=120, deadline=None)
def test_monoid_composition_matches_concatenation(case):
    machine, word1, word2 = case
    monoid = TransitionMonoid(machine)
    composed = monoid.then(monoid.of_word(word1), monoid.of_word(word2))
    assert composed == monoid.of_word(word1 + word2)


@given(machine_and_words())
@settings(max_examples=120, deadline=None)
def test_same_function_implies_same_acceptance_in_context(case):
    """The congruence direction of Theorem 2.1 used by the solver:
    words with the same representative function are interchangeable."""
    machine, word1, word2 = case
    monoid = TransitionMonoid(machine)
    if monoid.of_word(word1) == monoid.of_word(word2):
        for prefix in [(), ("x",), ("y", "x")]:
            assert machine.accepts(prefix + word1) == machine.accepts(prefix + word2)
