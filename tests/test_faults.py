"""Fault-injection tests: budgets, cancellation, crash-safe snapshots,
server resource governance, and client retry.

Every randomized corruption flows from one seed so failures replay
exactly; CI runs this file under several seeds via the
``REPRO_FAULT_SEED`` environment variable (default 0).
"""

import json
import os
import textwrap
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Budget,
    CancellationToken,
    SnapshotCorrupt,
    SolverBudgetExceeded,
    SolverCancelled,
)
from repro.core.annotations import CompiledMonoidAlgebra, MonoidAlgebra
from repro.core.persist import dump_solver, load_solver, read_snapshot, write_snapshot
from repro.core.solver import Solver
from repro.core.terms import Constructor, Variable
from repro.dfa.gallery import privilege_machine
from repro.service import AnalysisEngine, AnalysisServer, ServiceClient, protocol
from repro.service.client import ServiceUnavailable
from repro.service.metrics import Metrics
from repro.synth.workloads import random_annotated_graph
from repro.testing import FaultError, FaultInjector, FlakyProxy, SpinningEngine

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

MACHINE = privilege_machine()

VULNERABLE = textwrap.dedent(
    """
    void drop() {
      seteuid(getuid());
    }
    int main() {
      seteuid(0);
      execl("/bin/sh");
      drop();
      return 0;
    }
    """
)


def build_solver(algebra_cls, budget=None, n_vars=40, n_edges=260, seed=3):
    """A solver loaded with a random annotated workload (not yet solved
    when a tiny budget interrupts the batch)."""
    workload = random_annotated_graph(
        MACHINE, n_vars, n_edges, seed=seed, n_sources=3
    )
    algebra = algebra_cls(MACHINE)
    solver = Solver(algebra, budget=budget)
    variables = [Variable(f"v{i}") for i in range(workload.n_vars)]
    batch = [(Constructor(f"src{i}", 0)(), variables[i]) for i in workload.sources]
    batch += [
        (variables[s], variables[d], algebra.word(w))
        for s, d, w in workload.edges
    ]
    return solver, batch


def solved_form(solver):
    out = set()
    decode = getattr(solver.algebra, "decode", None)
    for var in solver.variables():
        for source, annotation in solver.lower_bounds(var):
            out.add((var, source, decode(annotation) if decode else annotation))
    return out


def wait_until(condition, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return True
        time.sleep(0.01)
    return False


def make_request(op, params=None, request_id=1):
    return json.dumps(
        {"v": protocol.PROTOCOL_VERSION, "id": request_id, "op": op,
         "params": params or {}}
    )


CHECK_PARAMS = {"program": "spin", "property": "spin"}


# ---------------------------------------------------------------------------
# budgets and cancellation
# ---------------------------------------------------------------------------


class TestBudgets:
    def test_step_budget_interrupts_with_progress(self):
        solver, batch = build_solver(
            MonoidAlgebra, Budget(max_steps=50, check_interval=1)
        )
        with pytest.raises(SolverBudgetExceeded) as err:
            solver.add_many(batch)
        assert err.value.limit == "steps"
        assert err.value.progress["steps"] == 50
        assert err.value.progress["facts"] > 0
        assert err.value.progress["pending"] > 0
        assert solver.pending_count() == err.value.progress["pending"]

    def test_time_budget_interrupts(self):
        solver, batch = build_solver(
            MonoidAlgebra, Budget(max_seconds=1e-6, check_interval=1)
        )
        with pytest.raises(SolverBudgetExceeded) as err:
            solver.add_many(batch)
        assert err.value.limit == "seconds"

    def test_fact_budget_interrupts(self):
        solver, batch = build_solver(
            MonoidAlgebra, Budget(max_facts=30, check_interval=1)
        )
        with pytest.raises(SolverBudgetExceeded) as err:
            solver.add_many(batch)
        assert err.value.limit == "facts"
        assert solver.fact_count() >= 30

    def test_budget_accumulates_across_small_drains(self):
        # The online solver drains after every add(); the step budget
        # still applies to the running total, not per-drain.
        solver, batch = build_solver(
            MonoidAlgebra, Budget(max_steps=120, check_interval=1)
        )
        with pytest.raises(SolverBudgetExceeded):
            for constraint in batch:
                solver.add(*constraint)
        assert solver.budget.steps >= 120

    def test_cancellation_from_another_thread(self):
        token = CancellationToken()
        solver, batch = build_solver(
            MonoidAlgebra, Budget(token=token, check_interval=1)
        )
        caught = []

        def solve():
            try:
                solver.add_many(batch)
            except SolverCancelled as exc:
                caught.append(exc)

        # Cancel before the drain starts: deterministic regardless of
        # how fast the solve is.
        token.cancel()
        worker = threading.Thread(target=solve)
        worker.start()
        worker.join(timeout=10)
        assert not worker.is_alive()
        assert len(caught) == 1
        assert "cancelled" in str(caught[0])

    def test_interrupted_solver_resumes_to_fixpoint(self):
        full, batch = build_solver(MonoidAlgebra)
        full.add_many(batch)
        part, batch = build_solver(
            MonoidAlgebra, Budget(max_steps=60, check_interval=1)
        )
        with pytest.raises(SolverBudgetExceeded):
            part.add_many(batch)
        part.resume(Budget())  # fresh, unlimited budget
        assert part.pending_count() == 0
        assert solved_form(part) == solved_form(full)

    def test_exhausted_budget_still_enforced_on_resume(self):
        part, batch = build_solver(
            MonoidAlgebra, Budget(max_steps=60, check_interval=1)
        )
        with pytest.raises(SolverBudgetExceeded):
            part.add_many(batch)
        with pytest.raises(SolverBudgetExceeded):
            part.resume()  # the spent budget stays attached


# ---------------------------------------------------------------------------
# checkpoint / resume equivalence
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("algebra_cls", [MonoidAlgebra, CompiledMonoidAlgebra])
class TestCheckpointResume:
    def test_checkpoint_resume_equals_uninterrupted(self, algebra_cls):
        full, batch = build_solver(algebra_cls)
        full.add_many(batch)
        part, batch = build_solver(
            algebra_cls, Budget(max_steps=70, check_interval=1)
        )
        with pytest.raises(SolverBudgetExceeded):
            part.add_many(batch)
        pending = part.pending_count()
        assert pending > 0
        loaded = load_solver(dump_solver(part))
        assert loaded.pending_count() == pending
        loaded.resume()
        assert loaded.pending_count() == 0
        assert solved_form(loaded) == solved_form(full)
        assert loaded.fact_count() == full.fact_count()

    def test_checkpoint_survives_snapshot_roundtrip(self, algebra_cls, tmp_path):
        full, batch = build_solver(algebra_cls)
        full.add_many(batch)
        part, batch = build_solver(
            algebra_cls, Budget(max_steps=70, check_interval=1)
        )
        with pytest.raises(SolverBudgetExceeded):
            part.add_many(batch)
        path = tmp_path / "checkpoint.json"
        write_snapshot(path, dump_solver(part))
        loaded = load_solver(read_snapshot(path))
        loaded.resume()
        assert solved_form(loaded) == solved_form(full)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    max_steps=st.integers(min_value=1, max_value=300),
    compiled=st.booleans(),
)
def test_checkpoint_resume_property(seed, max_steps, compiled):
    """For any workload and any interruption point: dump → load → resume
    reaches exactly the uninterrupted solved form."""
    algebra_cls = CompiledMonoidAlgebra if compiled else MonoidAlgebra
    full, batch = build_solver(algebra_cls, n_vars=20, n_edges=90, seed=seed)
    full.add_many(batch)
    part, batch = build_solver(
        algebra_cls,
        Budget(max_steps=max_steps, check_interval=1),
        n_vars=20,
        n_edges=90,
        seed=seed,
    )
    try:
        part.add_many(batch)
    except SolverBudgetExceeded:
        pass
    loaded = load_solver(dump_solver(part))
    loaded.resume()
    assert solved_form(loaded) == solved_form(full)
    assert loaded.fact_count() == full.fact_count()


# ---------------------------------------------------------------------------
# crash-safe snapshots
# ---------------------------------------------------------------------------


class TestSnapshotCrashSafety:
    def test_mid_dump_crash_preserves_previous_snapshot(self, tmp_path):
        injector = FaultInjector(SEED)
        path = tmp_path / "solver.json"
        write_snapshot(path, "generation one")
        with injector.crash_during_dump():
            with pytest.raises(FaultError):
                write_snapshot(path, "generation two")
        # The previous complete snapshot survives; no temp litter.
        assert read_snapshot(path) == "generation one"
        assert list(tmp_path.iterdir()) == [path]

    def test_mid_dump_crash_with_no_previous_snapshot(self, tmp_path):
        injector = FaultInjector(SEED)
        path = tmp_path / "solver.json"
        with injector.crash_during_dump():
            with pytest.raises(FaultError):
                write_snapshot(path, "never lands")
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_truncation_detected(self, tmp_path):
        injector = FaultInjector(SEED)
        path = tmp_path / "solver.json"
        solver, batch = build_solver(MonoidAlgebra)
        solver.add_many(batch)
        write_snapshot(path, dump_solver(solver))
        injector.truncate_file(path)
        with pytest.raises(SnapshotCorrupt):
            read_snapshot(path)

    def test_bit_flip_detected(self, tmp_path):
        injector = FaultInjector(SEED)
        path = tmp_path / "solver.json"
        solver, batch = build_solver(MonoidAlgebra)
        solver.add_many(batch)
        write_snapshot(path, dump_solver(solver))
        header_len = len(open(path, "rb").readline())
        injector.flip_bits(path, n_flips=3, skip=header_len)
        with pytest.raises(SnapshotCorrupt):
            read_snapshot(path)

    def test_engine_falls_back_to_cold_solve_on_corruption(self, tmp_path):
        injector = FaultInjector(SEED)
        warm = AnalysisEngine(snapshot_dir=tmp_path)
        expected = warm.check(VULNERABLE, "simple-privilege")
        (snapshot,) = list(tmp_path.iterdir())
        injector.truncate_file(snapshot)
        fresh = AnalysisEngine(snapshot_dir=tmp_path)
        result = fresh.check(VULNERABLE, "simple-privilege")
        assert result == expected
        assert fresh.metrics.get("cache.snapshot.corrupt") == 1
        assert fresh.metrics.get("cache.snapshot.warm") == 0
        # the corrupt file was quarantined, then a fresh one was saved
        assert fresh.metrics.get("cache.snapshot.saved") == 1
        again = AnalysisEngine(snapshot_dir=tmp_path)
        warm_result = again.check(VULNERABLE, "simple-privilege")
        # warm starts skip encoding, so "constraints" differs by design
        for field in ("has_violation", "violations", "facts"):
            assert warm_result[field] == expected[field]
        assert again.metrics.get("cache.snapshot.warm") == 1


# ---------------------------------------------------------------------------
# server resource governance
# ---------------------------------------------------------------------------


class TestServerGovernance:
    def test_timeout_cancels_worker_and_releases_slot(self):
        engine = SpinningEngine()
        server = AnalysisServer(engine=engine, workers=1, timeout=0.2)
        try:
            reply = json.loads(
                server.process_line(make_request("check", CHECK_PARAMS))
            )
            assert not reply["ok"]
            assert reply["error"]["code"] == protocol.E_TIMEOUT
            # the worker actually observed the cancellation...
            assert wait_until(
                lambda: server.metrics.get("requests.cancelled") >= 1
            ), "worker leaked: cancellation never observed"
            # ...and its pool slot came back (no leaked busy thread):
            assert wait_until(
                lambda: server.metrics.gauge("requests.inflight") == 0
            )
            reply = json.loads(server.process_line(make_request("ping")))
            assert reply["ok"]
        finally:
            engine.abort.set()
            server.close()

    def test_shutdown_cancels_inflight_work(self):
        engine = SpinningEngine()
        server = AnalysisServer(engine=engine, workers=1, timeout=None)
        replies = []
        worker = threading.Thread(
            target=lambda: replies.append(
                json.loads(server.process_line(make_request("check", CHECK_PARAMS)))
            )
        )
        worker.start()
        try:
            assert engine.started.wait(5), "analysis never started"
            server.close()
            worker.join(timeout=5)
            assert not worker.is_alive(), "shutdown leaked a busy worker"
            assert replies[0]["error"]["code"] == protocol.E_CANCELLED
            assert server.metrics.get("requests.cancelled") == 1
        finally:
            engine.abort.set()
            server.close()

    def test_load_shedding_with_bounded_queue(self):
        engine = SpinningEngine()
        server = AnalysisServer(
            engine=engine, workers=1, timeout=None, max_queue=0
        )
        replies = []
        worker = threading.Thread(
            target=lambda: replies.append(
                json.loads(server.process_line(make_request("check", CHECK_PARAMS)))
            )
        )
        worker.start()
        try:
            assert engine.started.wait(5)
            assert server.metrics.gauge("requests.inflight") == 1
            shed = json.loads(
                server.process_line(make_request("check", CHECK_PARAMS, 2))
            )
            assert not shed["ok"]
            assert shed["error"]["code"] == protocol.E_OVERLOADED
            assert server.metrics.get("requests.shed") == 1
            # health stays answerable while analysis load is shed
            assert json.loads(server.process_line(make_request("ping", {}, 3)))["ok"]
        finally:
            server.close()
            worker.join(timeout=5)
            engine.abort.set()

    def test_circuit_breaker_trips_and_half_open_recovers(self):
        class FlippableEngine:
            def __init__(self):
                self.metrics = Metrics()
                self.fail = True

            def dispatch(self, op, params, budget=None):
                if op == "ping":
                    return {"pong": True}
                if self.fail:
                    raise RuntimeError("transient backend failure")
                return {"answer": 42}

        engine = FlippableEngine()
        server = AnalysisServer(
            engine=engine,
            workers=1,
            breaker_threshold=2,
            breaker_cooldown=0.2,
        )
        try:
            for request_id in (1, 2):
                reply = json.loads(
                    server.process_line(
                        make_request("check", CHECK_PARAMS, request_id)
                    )
                )
                assert reply["error"]["code"] == protocol.E_INTERNAL
            # threshold reached: the fingerprint is refused without running
            tripped = json.loads(
                server.process_line(make_request("check", CHECK_PARAMS, 3))
            )
            assert tripped["error"]["code"] == protocol.E_CIRCUIT_OPEN
            assert server.metrics.get("breaker.open") == 1
            # a *different* request is unaffected
            other = json.loads(
                server.process_line(
                    make_request("check", {"program": "other", "property": "p"}, 4)
                )
            )
            assert other["error"]["code"] == protocol.E_INTERNAL
            # after the cooldown, one probe is admitted; success closes
            engine.fail = False
            time.sleep(0.25)
            probe = json.loads(
                server.process_line(make_request("check", CHECK_PARAMS, 5))
            )
            assert probe["ok"]
            assert json.loads(
                server.process_line(make_request("check", CHECK_PARAMS, 6))
            )["ok"]
        finally:
            server.close()

    def test_wire_budget_param_yields_typed_error(self):
        server = AnalysisServer(workers=1)
        try:
            reply = json.loads(
                server.process_line(
                    make_request(
                        "check",
                        {
                            "program": VULNERABLE,
                            "property": "simple-privilege",
                            "budget": {"steps": 3},
                        },
                    )
                )
            )
            assert not reply["ok"]
            assert reply["error"]["code"] == protocol.E_BUDGET
            assert server.metrics.get("requests.budget_exceeded") == 1
        finally:
            server.close()


# ---------------------------------------------------------------------------
# client retry / reconnect
# ---------------------------------------------------------------------------


class TestClientRetry:
    def _server(self):
        server = AnalysisServer(workers=2)
        host, port = server.start_tcp()
        return server, host, port

    def test_retries_through_failed_connects(self):
        server, host, port = self._server()
        proxy = FlakyProxy(host, port, fail_connects=2)
        proxy_host, proxy_port = proxy.start()
        try:
            client = ServiceClient(
                proxy_host,
                proxy_port,
                retries=3,
                backoff=0.01,
                retry_seed=SEED,
            )
            assert client.ping()["pong"]
            assert proxy.connects == 3  # two injected failures + success
            client.close()
        finally:
            proxy.stop()
            server.close()

    def test_reconnects_after_mid_conversation_drop(self):
        server, host, port = self._server()
        proxy = FlakyProxy(host, port, drop_after=1)
        proxy_host, proxy_port = proxy.start()
        try:
            client = ServiceClient(
                proxy_host,
                proxy_port,
                retries=2,
                backoff=0.01,
                retry_seed=SEED,
            )
            assert client.ping()["pong"]  # connection is severed after this
            assert client.ping()["pong"]  # transparently reconnects
            assert proxy.connects == 2
            client.close()
        finally:
            proxy.stop()
            server.close()

    def test_unavailable_after_exhausting_retries(self):
        server, host, port = self._server()
        proxy = FlakyProxy(host, port, fail_connects=100)
        proxy_host, proxy_port = proxy.start()
        try:
            client = ServiceClient(
                proxy_host,
                proxy_port,
                retries=2,
                backoff=0.01,
                retry_seed=SEED,
            )
            with pytest.raises(ServiceUnavailable) as err:
                client.ping()
            assert err.value.code == protocol.E_UNAVAILABLE
            assert proxy.connects == 3
            client.close()
        finally:
            proxy.stop()
            server.close()


# ---------------------------------------------------------------------------
# journal crash durability
# ---------------------------------------------------------------------------

JOURNAL_P1 = "void main() {\n  open();\n  use();\n  close();\n}\n"
JOURNAL_P2 = "void main() {\n  open();\n  use();\n  use();\n  close();\n}\n"
JOURNAL_PROP = "chroot-jail"


class TestJournalFaults:
    def _session(self, tmp_path, **engine_kw):
        """An engine with one journaled hot session two patches deep."""
        engine = AnalysisEngine(journal_dir=tmp_path, **engine_kw)
        r1 = engine.patch(JOURNAL_P1, JOURNAL_PROP)
        r2 = engine.patch(JOURNAL_P2, JOURNAL_PROP, base=r1["version"])
        return engine, r1, r2

    def _cold(self, source):
        return AnalysisEngine().patch(source, JOURNAL_PROP)

    def test_torn_tail_quarantines_to_cold_fallback(self, tmp_path):
        injector = FaultInjector(SEED)
        engine, r1, r2 = self._session(tmp_path)
        engine.close()
        fp = r2["fingerprint"]
        wal = tmp_path / f"{fp}.wal"
        cut = injector.tear_journal_tail(wal)
        assert cut > 0
        fresh = AnalysisEngine(journal_dir=tmp_path)
        assert fresh.recoveries == 0
        assert fresh.metrics.get("journal.quarantined") == 1
        result = fresh.patch(JOURNAL_P2, JOURNAL_PROP, base=r2["version"])
        assert result["fallback"] == "quarantined-torn-record"
        # the damaged evidence is preserved for the operator
        assert (tmp_path / f"{fp}.wal.quarantined").exists()
        cold = self._cold(JOURNAL_P2)
        for field in ("has_violation", "violations", "facts"):
            assert result[field] == cold[field]
        # the session is live again after the typed fallback
        follow = fresh.patch(JOURNAL_P1, JOURNAL_PROP, base=result["version"])
        assert follow["patched"] is True
        fresh.close()

    def test_bit_flip_quarantines_to_cold_fallback(self, tmp_path):
        injector = FaultInjector(SEED)
        engine, r1, r2 = self._session(tmp_path)
        engine.close()
        fp = r2["fingerprint"]
        injector.corrupt_journal_record(tmp_path / f"{fp}.wal", record=0)
        fresh = AnalysisEngine(journal_dir=tmp_path)
        result = fresh.patch(JOURNAL_P2, JOURNAL_PROP, base=r2["version"])
        assert result["fallback"] == "quarantined-corrupt-record"
        cold = self._cold(JOURNAL_P2)
        for field in ("has_violation", "violations", "facts"):
            assert result[field] == cold[field]
        fresh.close()

    def test_crash_between_append_and_fsync(self, tmp_path):
        """The record hits the OS before fsync: a crash there loses the
        *acknowledgement*, not the record — restart replays it and a
        keyed retry answers from the recovered session."""
        injector = FaultInjector(SEED)
        engine, _, r2 = self._session(tmp_path)
        with injector.crash_before_fsync():
            with pytest.raises(FaultError):
                engine.patch(
                    JOURNAL_P1, JOURNAL_PROP, base=r2["version"], key="retry-me"
                )
        engine.close()
        fresh = AnalysisEngine(journal_dir=tmp_path)
        assert fresh.recoveries == 1
        retry = fresh.patch(
            JOURNAL_P1, JOURNAL_PROP, base=r2["version"], key="retry-me"
        )
        assert retry["replayed"] is True
        assert retry["patched"] is True
        cold = self._cold(JOURNAL_P1)
        for field in ("has_violation", "violations", "facts"):
            assert retry[field] == cold[field]
        fresh.close()

    def test_crash_mid_compaction_preserves_wal(self, tmp_path):
        """A crash while writing the compaction snapshot must leave the
        un-rotated journal behind; restart replays the full suffix."""
        injector = FaultInjector(SEED)
        engine = AnalysisEngine(journal_dir=tmp_path, journal_compact_every=1)
        r1 = engine.patch(JOURNAL_P1, JOURNAL_PROP)
        with injector.crash_during_dump():
            with pytest.raises(FaultError):
                engine.patch(JOURNAL_P2, JOURNAL_PROP, base=r1["version"])
        engine.close()
        fresh = AnalysisEngine(journal_dir=tmp_path)
        assert fresh.recoveries == 1
        assert fresh.metrics.get("journal.quarantined") == 0
        # the patch had applied before the compaction crash; the
        # recovered session is at the new version
        from repro.service import program_hash

        result = fresh.patch(
            JOURNAL_P1, JOURNAL_PROP, base=program_hash(JOURNAL_P2)
        )
        assert result["patched"] is True
        fresh.close()


class TestIdempotentRetry:
    def test_lost_response_replays_instead_of_base_mismatch(self, tmp_path):
        """Satellite regression: the proxy swallows the server's patch
        response *after* the server applied it; the client's transparent
        retry carries the same auto-generated idempotency key, so the
        server answers from the journaled session instead of degrading
        to a base-mismatch cold solve."""
        engine = AnalysisEngine(journal_dir=tmp_path)
        server = AnalysisServer(engine, workers=2)
        host, port = server.start_tcp()
        proxy = FlakyProxy(host, port, drop_response=2)
        proxy_host, proxy_port = proxy.start()
        try:
            client = ServiceClient(
                proxy_host,
                proxy_port,
                retries=3,
                backoff=0.01,
                retry_seed=SEED,
            )
            first = client.patch(JOURNAL_P1, JOURNAL_PROP)
            assert first["replayed"] is False
            # response #2 is swallowed mid-flight; the retry re-sends
            # the identical request (same key) over a new connection
            second = client.patch(
                JOURNAL_P2, JOURNAL_PROP, base=first["version"]
            )
            assert proxy.responses >= 2
            assert second["replayed"] is True
            assert second["patched"] is True
            assert second["fallback"] is None
            assert engine.metrics.get("patch.replayed") == 1
            assert engine.metrics.get("patch.fallback.base-mismatch") == 0
            client.close()
        finally:
            proxy.stop()
            server.close()
