"""Scale-out saturation smoke: concurrent clients vs process workers.

CI runs this under two ``REPRO_SATURATION_SEED`` values (the seed
varies every generated program, so each run solves different constraint
systems).  Two scenarios:

* N concurrent client connections push distinct cold solves through
  the selectors front door onto M worker processes — every request must
  come back ``ok`` with a solved-form fact count, and the aggregated
  ``stats`` must account for all of them;
* ``kill -9`` of a pool worker *mid-solve* — the in-flight request gets
  the typed ``unavailable`` refusal (never a hang, never a traceback),
  and the pool heals itself so later requests succeed.
"""

import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.service import protocol
from repro.service.frontdoor import AsyncAnalysisServer
from repro.synth import PackageSpec, generate_package

SEED = int(os.environ.get("REPRO_SATURATION_SEED", "0"))
CLIENTS = 4
REQUESTS_PER_CLIENT = 3
WORKERS = 2


def _program(index: int, lines: int = 400, functions: int = 6) -> str:
    return generate_package(
        PackageSpec(
            f"saturation-{SEED}-{index}",
            lines,
            functions,
            seed=SEED * 31 + index,
        )
    )


def _rpc(sock, reader, op, params, rid):
    sock.sendall(
        (
            json.dumps({"v": 1, "id": rid, "op": op, "params": params}) + "\n"
        ).encode()
    )
    line = reader.readline()
    assert line, "server closed the connection"
    response = json.loads(line)
    assert response["id"] == rid
    return response


def test_concurrent_clients_saturate_the_pool():
    server = AsyncAnalysisServer(
        workers=WORKERS, preload=["full-privilege"], timeout=300.0
    )
    host, port = server.start()
    programs = [
        _program(i) for i in range(CLIENTS * REQUESTS_PER_CLIENT)
    ]
    responses: list[dict] = []
    lock = threading.Lock()
    failures: list[BaseException] = []

    def client(client_index: int) -> None:
        try:
            sock = socket.create_connection((host, port), timeout=300)
            reader = sock.makefile("r")
            for j in range(REQUESTS_PER_CLIENT):
                index = client_index * REQUESTS_PER_CLIENT + j
                response = _rpc(
                    sock,
                    reader,
                    "check",
                    {
                        "program": programs[index],
                        "property": "full-privilege",
                    },
                    rid=index,
                )
                with lock:
                    responses.append(response)
            sock.close()
        except BaseException as exc:  # surfaced after join
            with lock:
                failures.append(exc)

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(CLIENTS)
    ]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not failures, failures
        assert len(responses) == CLIENTS * REQUESTS_PER_CLIENT
        for response in responses:
            assert response["ok"], response
            assert response["result"]["facts"] > 0
        # The aggregate must account for every request across workers.
        sock = socket.create_connection((host, port), timeout=60)
        reader = sock.makefile("r")
        stats = _rpc(sock, reader, "stats", {}, rid="stats")["result"]
        sock.close()
        assert stats["pool"]["workers"] == WORKERS
        assert (
            stats["counters"]["requests.check"]
            >= CLIENTS * REQUESTS_PER_CLIENT
        )
        assert stats["counters"].get("pool.dispatched", 0) >= (
            CLIENTS * REQUESTS_PER_CLIENT
        )
        assert stats["frontdoor"]["inflight"] == 0
    finally:
        server.close()


def test_kill_worker_mid_solve_is_typed_and_heals():
    server = AsyncAnalysisServer(
        workers=1, preload=["full-privilege"], timeout=300.0
    )
    host, port = server.start()
    sock = socket.create_connection((host, port), timeout=300)
    reader = sock.makefile("r")
    # Big enough that the solve is still running when SIGKILL lands.
    big = _program(999, lines=8_000, functions=40)
    try:
        saw_unavailable = False
        for attempt in range(5):
            pids = server.pool.worker_pids()
            sock.sendall(
                (
                    json.dumps(
                        {
                            "v": 1,
                            "id": f"kill-{attempt}",
                            "op": "check",
                            "params": {
                                "program": big,
                                "property": "full-privilege",
                            },
                        }
                    )
                    + "\n"
                ).encode()
            )
            time.sleep(0.2)  # let the worker pick the solve up
            for pid in pids:
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
            response = json.loads(reader.readline())
            if not response["ok"]:
                assert (
                    response["error"]["code"] == protocol.E_UNAVAILABLE
                ), response
                saw_unavailable = True
                break
            # The solve won the race; try again against the fresh pool.
        assert saw_unavailable, (
            "five mid-solve SIGKILLs never surfaced as a typed "
            "unavailable refusal"
        )
        # Self-heal: the pool rebuilt and serves again.
        deadline = time.time() + 120
        healed = False
        index = 0
        while time.time() < deadline:
            response = _rpc(
                sock,
                reader,
                "check",
                {"program": _program(50 + index), "property": "full-privilege"},
                rid=f"heal-{index}",
            )
            index += 1
            if response["ok"]:
                healed = True
                break
            assert response["error"]["code"] == protocol.E_UNAVAILABLE
            time.sleep(0.2)
        assert healed, "pool never healed after the SIGKILL"
        assert server.pool.rebuilds >= 1
    finally:
        sock.close()
        server.close()
