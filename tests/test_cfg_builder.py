"""Tests for interprocedural CFG construction."""

import pytest

from repro.cfg import ast, build_cfg


def node_kinds(cfg, function):
    return [n.kind for n in cfg.functions[function].nodes]


class TestStructure:
    def test_entry_and_exit(self):
        cfg = build_cfg("int main() { return 0; }")
        main = cfg.main
        assert main.entry.kind == "entry"
        assert main.exit.kind == "exit"
        # the return statement reaches the exit
        preds = list(cfg.predecessors(main.exit))
        assert preds

    def test_straight_line(self):
        cfg = build_cfg("int main() { a(); b(); }")
        calls = [n for n in cfg.all_nodes() if n.call is not None]
        assert [c.call.callee for c in calls] == ["a", "b"]

    def test_branching_joins(self):
        cfg = build_cfg("int main() { if (x) { a(); } else { b(); } c(); }")
        c_node = next(n for n in cfg.all_nodes() if n.call and n.call.callee == "c")
        # both branches flow into the statement before c's node chain
        preds = list(cfg.predecessors(c_node))
        assert len(preds) == 2

    def test_loop_back_edge(self):
        cfg = build_cfg("int main() { while (x) { a(); } b(); }")
        nodes = list(cfg.all_nodes())
        header = next(
            n for n in nodes if n.stmt is not None and isinstance(n.stmt, ast.While)
        )
        # the loop body's last node flows back to the header
        assert any(header.id in [s.id for s in cfg.successors(p)]
                   for p in cfg.predecessors(header))

    def test_break_exits_loop(self):
        cfg = build_cfg("int main() { while (1) { if (x) break; a(); } done(); }")
        done = next(n for n in cfg.all_nodes() if n.call and n.call.callee == "done")
        preds = {p.kind for p in cfg.predecessors(done)}
        assert preds  # break node flows here

    def test_return_skips_rest(self):
        cfg = build_cfg("int main() { if (x) { return 1; } after(); }")
        after = next(n for n in cfg.all_nodes() if n.call and n.call.callee == "after")
        # the return-statement node must not be a predecessor of after()
        for pred in cfg.predecessors(after):
            assert not isinstance(pred.stmt, ast.Return)


class TestCallSites:
    def test_defined_calls_get_sites(self):
        cfg = build_cfg("void f() { } int main() { f(); f(); }")
        sites = sorted(cfg.call_sites)
        assert len(sites) == 2
        for site in sites:
            node, callee = cfg.call_sites[site]
            assert node.kind == "call"
            assert callee == "f"

    def test_primitive_calls_are_stmts(self):
        cfg = build_cfg("int main() { seteuid(0); }")
        node = next(n for n in cfg.all_nodes() if n.call is not None)
        assert node.kind == "stmt"
        assert node.site is None

    def test_owner_statement_recorded(self):
        cfg = build_cfg("int main() { int fd = open(1); }")
        node = next(n for n in cfg.all_nodes() if n.call is not None)
        assert isinstance(node.owner, ast.Decl)
        assert node.owner.name == "fd"

    def test_owner_for_assignment(self):
        cfg = build_cfg("int main() { int fd; fd = open(1); }")
        node = next(n for n in cfg.all_nodes() if n.call is not None)
        assert isinstance(node.owner, ast.ExprStmt)

    def test_recursion_allowed(self):
        cfg = build_cfg("void f() { f(); } int main() { f(); }")
        assert len(cfg.call_sites) == 2


class TestCounts:
    def test_counts_consistent(self):
        cfg = build_cfg("void f() { a(); } int main() { f(); }")
        assert cfg.node_count() == len(list(cfg.all_nodes()))
        assert cfg.edge_count() > 0

    def test_describe(self):
        cfg = build_cfg('int main() { execl("/bin/sh", 0); }')
        node = next(n for n in cfg.all_nodes() if n.call is not None)
        text = node.describe()
        assert "execl" in text and "/bin/sh" in text

    def test_missing_main(self):
        cfg = build_cfg("void helper() { }")
        with pytest.raises(KeyError):
            _ = cfg.main
