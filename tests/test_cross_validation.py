"""Cross-validation property tests: independent implementations agree.

These are the strongest correctness checks in the suite:

* the annotated-constraint model checker (Section 6) and the MOPS-style
  PDA/post* baseline must return the same verdict on every random
  program;
* the annotation-based interprocedural dataflow solver (Section 3.3)
  and the classic functional-approach solver must compute identical
  may-hold sets at every CFG node.

The two members of each pair share no code beyond the CFG builder.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import build_cfg
from repro.dataflow import (
    AnnotatedBitVectorAnalysis,
    FunctionalBitVectorAnalysis,
    privilege_fact_problem,
)
from repro.dataflow.problems import call_tracking_problem
from repro.modelcheck import AnnotatedChecker, simple_privilege_property
from repro.mops import MopsChecker


def random_program(seed: int, n_functions: int = 3, stmts_per_fn: int = 6) -> str:
    """A small random mini-C program over the privilege primitives."""
    rng = random.Random(seed)
    names = [f"f{i}" for i in range(n_functions)]
    events = [
        "seteuid(0);",
        "seteuid(getuid());",
        'execl("/bin/sh", 0);',
        "work();",
    ]
    lines = []

    def body(depth: int, budget: int, callees: list[str]) -> None:
        indent = "  " * depth
        while budget > 0:
            roll = rng.random()
            if roll < 0.2 and budget >= 3:
                lines.append(f"{indent}if (x) {{")
                inner = rng.randrange(1, budget)
                body(depth + 1, inner, callees)
                if rng.random() < 0.5:
                    lines.append(f"{indent}}} else {{")
                    body(depth + 1, 1, callees)
                lines.append(f"{indent}}}")
                budget -= inner + 1
            elif roll < 0.3 and budget >= 3:
                lines.append(f"{indent}while (y) {{")
                inner = rng.randrange(1, budget)
                body(depth + 1, inner, callees)
                lines.append(f"{indent}}}")
                budget -= inner + 1
            elif roll < 0.55 and callees:
                lines.append(f"{indent}{rng.choice(callees)}();")
                budget -= 1
            else:
                lines.append(f"{indent}{rng.choice(events)}")
                budget -= 1

    for i, name in enumerate(names):
        callees = names[i + 1 :]
        if rng.random() < 0.3:
            callees = callees + [name]  # recursion
        lines.append(f"void {name}() {{")
        body(1, rng.randrange(2, stmts_per_fn), callees)
        lines.append("}")
    lines.append("int main() {")
    body(1, rng.randrange(2, stmts_per_fn), names)
    lines.append("  return 0;")
    lines.append("}")
    return "\n".join(lines)


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=60, deadline=None)
def test_checkers_agree_on_random_programs(seed):
    cfg = build_cfg(random_program(seed))
    prop = simple_privilege_property()
    annotated = AnnotatedChecker(cfg, prop).check().has_violation
    mops = MopsChecker(cfg, prop).check().has_violation
    assert annotated == mops, f"seed {seed}: annotated={annotated} mops={mops}"


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=40, deadline=None)
def test_dataflow_solvers_agree_on_random_programs(seed):
    cfg = build_cfg(random_program(seed))
    problem = privilege_fact_problem()
    annotated = AnnotatedBitVectorAnalysis(cfg, problem).solution()
    classic = FunctionalBitVectorAnalysis(cfg, problem).solution()
    assert annotated == classic, f"seed {seed}"


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=25, deadline=None)
def test_multibit_dataflow_agrees(seed):
    cfg = build_cfg(random_program(seed))
    problem = call_tracking_problem(cfg, ["seteuid", "execl", "work"])
    annotated = AnnotatedBitVectorAnalysis(cfg, problem).solution()
    classic = FunctionalBitVectorAnalysis(cfg, problem).solution()
    assert annotated == classic, f"seed {seed}"


def test_checkers_agree_on_fixed_regression_seeds():
    """A handful of pinned seeds, always exercised."""
    prop = simple_privilege_property()
    for seed in (0, 1, 7, 42, 1234, 99999):
        cfg = build_cfg(random_program(seed))
        annotated = AnnotatedChecker(cfg, prop).check().has_violation
        mops = MopsChecker(cfg, prop).check().has_violation
        assert annotated == mops, seed
