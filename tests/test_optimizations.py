"""Tests for solver/checker optimizations and the extra property.

Covers ε-cycle elimination (§8's cycle-elimination optimization),
liveness pruning ablation, runtime-stack witness extraction (§6.2),
and the chroot-jail property.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import build_cfg
from repro.core.annotations import MonoidAlgebra
from repro.core.queries import Reachability
from repro.core.solver import Solver
from repro.core.terms import Constructor, Variable, constant
from repro.dfa.regex import regex_to_dfa
from repro.modelcheck import (
    AnnotatedChecker,
    chroot_property,
    simple_privilege_property,
)
from repro.mops import MopsChecker
from tests.test_cross_validation import random_program

LOOPY_PROGRAM = """
int main() {
  seteuid(0);
  while (running) {
    poll();
    if (c) { seteuid(getuid()); }
    audit();
  }
  execl("/bin/sh", 0);
  return 0;
}
"""


class TestCycleElimination:
    def test_reduces_facts_preserves_verdict(self):
        cfg = build_cfg(LOOPY_PROGRAM)
        prop = simple_privilege_property()
        # Online cycle elimination (the default) already merges the loop
        # into one variable; turn it off so `plain` measures the
        # uncollapsed baseline the static pre-pass is compared against.
        plain = AnnotatedChecker(cfg, prop, cycle_elim=False)
        collapsed = AnnotatedChecker(cfg, prop, collapse_cycles=True)
        assert collapsed.solver.fact_count() < plain.solver.fact_count()
        assert plain.check().has_violation == collapsed.check().has_violation

    def test_merged_nodes_share_variables(self):
        cfg = build_cfg("int main() { while (x) { work(); } done(); }")
        prop = simple_privilege_property()
        checker = AnnotatedChecker(cfg, prop, collapse_cycles=True)
        assert checker._rep  # some loop nodes merged

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_collapse_is_verdict_preserving(self, seed):
        cfg = build_cfg(random_program(seed))
        prop = simple_privilege_property()
        plain = AnnotatedChecker(cfg, prop).check().has_violation
        collapsed = AnnotatedChecker(
            cfg, prop, collapse_cycles=True
        ).check().has_violation
        assert plain == collapsed, seed


class TestPruningAblation:
    def test_pruning_reduces_facts_same_answers(self):
        machine = regex_to_dfa("ab")
        algebra = MonoidAlgebra(machine)
        pruned = Solver(algebra)
        unpruned = Solver(algebra, prune_dead=False)
        c = constant("c")
        for solver in (pruned, unpruned):
            chain = [Variable(f"v{i}") for i in range(4)]
            solver.add(c, chain[0])
            solver.add(chain[0], chain[1], algebra.word("b"))  # dead prefix
            solver.add(chain[1], chain[2], algebra.word("a"))
            solver.add(chain[0], chain[3], algebra.word("a"))  # live
        assert pruned.fact_count() < unpruned.fact_count()
        # accepting facts agree
        live = algebra.word("ab")
        assert pruned.has_lower(Variable("v3"), c, algebra.word("a"))
        assert unpruned.has_lower(Variable("v3"), c, algebra.word("a"))


class TestStackWitness:
    def test_runtime_stack_extracted(self):
        source = """
        void inner() { execl("/x", 0); }
        void outer() { inner(); }
        int main() { seteuid(0); outer(); return 0; }
        """
        cfg = build_cfg(source)
        prop = simple_privilege_property()
        checker = AnnotatedChecker(cfg, prop)
        result = checker.check()
        assert result.has_violation
        reach = checker.reachability()
        # Find a violating node inside inner(): its stack has two frames.
        inner_nodes = [
            node for node in cfg.all_nodes() if node.function == "inner"
        ]
        stacks = []
        for node in inner_nodes:
            var = checker.node_var(node)
            for ann in reach.annotations_of(var, checker.pc):
                if checker.algebra.is_accepting(ann):
                    stacks.append(reach.stack_of(var, checker.pc, ann))
        assert stacks
        deepest = max(stacks, key=len)
        assert len(deepest) == 2  # o_site(inner) within o_site(outer)
        assert all(name.startswith("o") for name in deepest)

    def test_stack_empty_at_main(self):
        cfg = build_cfg("int main() { seteuid(0); execl(\"/x\", 0); }")
        prop = simple_privilege_property()
        checker = AnnotatedChecker(cfg, prop)
        checker.check()
        reach = checker.reachability()
        var = checker.node_var(cfg.main.exit)
        anns = reach.annotations_of(var, checker.pc)
        assert anns
        for ann in anns:
            assert reach.stack_of(var, checker.pc, ann) == []


class TestChrootProperty:
    def test_jail_escape_detected(self):
        source = """
        int main() {
          chroot("/jail");
          open("etc/passwd", 0);
          return 0;
        }
        """
        cfg = build_cfg(source)
        assert AnnotatedChecker(cfg, chroot_property()).check().has_violation
        assert MopsChecker(cfg, chroot_property()).check().has_violation

    def test_chdir_makes_safe(self):
        source = """
        int main() {
          chroot("/jail");
          chdir("/");
          open("etc/passwd", 0);
          return 0;
        }
        """
        cfg = build_cfg(source)
        assert not AnnotatedChecker(cfg, chroot_property()).check().has_violation

    def test_chdir_elsewhere_insufficient(self):
        source = """
        int main() {
          chroot("/jail");
          chdir("subdir");
          open("x", 0);
          return 0;
        }
        """
        cfg = build_cfg(source)
        assert AnnotatedChecker(cfg, chroot_property()).check().has_violation

    def test_rechroot_reenters_jail(self):
        source = """
        int main() {
          chroot("/a");
          chdir("/");
          chroot("/b");
          execl("/bin/sh", 0);
          return 0;
        }
        """
        cfg = build_cfg(source)
        assert AnnotatedChecker(cfg, chroot_property()).check().has_violation

    def test_open_before_chroot_fine(self):
        cfg = build_cfg('int main() { open("/etc/passwd", 0); return 0; }')
        assert not AnnotatedChecker(cfg, chroot_property()).check().has_violation


class TestHeapStateProperty:
    """Use-after-free / double-free via parametric annotations."""

    def _check(self, source):
        from repro.modelcheck import heap_state_property

        cfg = build_cfg(source)
        return AnnotatedChecker(cfg, heap_state_property()).check()

    def test_use_after_free(self):
        result = self._check(
            """
            int main() {
              int p = malloc(10);
              free(p);
              memcpy(p, 0, 10);
              return 0;
            }
            """
        )
        assert result.has_violation
        assert (("p", "p"),) in {v.instantiation for v in result.violations}

    def test_double_free(self):
        result = self._check(
            "int main() { int p = malloc(4); free(p); free(p); return 0; }"
        )
        assert result.has_violation

    def test_per_pointer_instances(self):
        result = self._check(
            """
            int main() {
              int p = malloc(4);
              int q = malloc(4);
              free(p);
              memcpy(q, 0, 4);
              free(q);
              return 0;
            }
            """
        )
        assert not result.has_violation

    def test_free_unallocated(self):
        result = self._check("int main() { free(p); return 0; }")
        assert result.has_violation

    def test_realloc_pattern(self):
        # alloc after free makes the pointer live again
        result = self._check(
            """
            int main() {
              int p = malloc(4);
              free(p);
              p = malloc(8);
              memcpy(p, 0, 8);
              free(p);
              return 0;
            }
            """
        )
        assert not result.has_violation

    def test_conditional_free_is_may_violation(self):
        result = self._check(
            """
            int main() {
              int p = malloc(4);
              if (x) { free(p); }
              memcpy(p, 0, 4);
              return 0;
            }
            """
        )
        assert result.has_violation  # the freeing path reaches the use

    def test_mops_agreement(self):
        from repro.modelcheck import heap_state_property
        from repro.mops import MopsChecker

        for source in (
            "int main() { int p = malloc(4); free(p); free(p); }",
            "int main() { int p = malloc(4); free(p); }",
        ):
            cfg = build_cfg(source)
            prop = heap_state_property()
            annotated = AnnotatedChecker(cfg, prop).check().has_violation
            mops = MopsChecker(cfg, prop).check().has_violation
            assert annotated == mops
