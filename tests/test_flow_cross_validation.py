"""Primal vs dual flow analysis on random programs (§7 vs §7.6).

For programs without recursion, the dual encoding's regular call
language is exact, so the primal (calls context-free, fields regular)
and the dual (fields context-free, calls regular) must compute the same
matched-flow relation.  We generate random well-typed programs — every
function takes and returns int; expressions mix literals, parameters,
inline pairs with projections, and calls to earlier functions — and
compare the full flow matrices.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow import DualFlowAnalysis, FlowAnalysis


class _ProgramBuilder:
    def __init__(self, seed: int, n_functions: int):
        self.rng = random.Random(seed)
        self.n_functions = n_functions
        self.labels = 0
        self.sites = 0

    def label(self) -> str:
        self.labels += 1
        return f"L{self.labels}"

    def site(self) -> str:
        self.sites += 1
        return f"s{self.sites}"

    def int_expr(self, callees: list[str], has_param: bool, depth: int) -> str:
        """A random expression of type int."""
        roll = self.rng.random()
        labeled = self.rng.random() < 0.5
        if depth <= 0 or roll < 0.25:
            body = str(self.rng.randrange(10))
        elif roll < 0.5 and has_param:
            body = "y"
        elif roll < 0.75 and callees:
            callee = self.rng.choice(callees)
            arg = self.int_expr(callees, has_param, depth - 1)
            body = f"{callee}^{self.site()}({arg})"
        elif roll < 0.88:
            left = self.int_expr(callees, has_param, depth - 1)
            right = self.int_expr(callees, has_param, depth - 1)
            index = self.rng.choice((1, 2))
            body = f"(({left}, {right})).{index}"
        elif roll < 0.94:
            cond = self.int_expr(callees, has_param, 0)
            then = self.int_expr(callees, has_param, depth - 1)
            orelse = self.int_expr(callees, has_param, depth - 1)
            body = f"(if {cond} then {then} else {orelse})"
        else:
            value = self.int_expr(callees, has_param, depth - 1)
            use = self.int_expr(callees, has_param, depth - 1)
            # the bound variable is sometimes used via a pair
            body = f"(let v = {value} in ({use}, v).2)"
        if labeled:
            return f"({body})@{self.label()}"
        return body

    def build(self) -> str:
        names = [f"f{i}" for i in range(self.n_functions)]
        lines = []
        for i, name in enumerate(names):
            body = self.int_expr(names[:i], has_param=True, depth=3)
            lines.append(f"{name}(y : int) : int = {body};")
        main_body = self.int_expr(names, has_param=False, depth=3)
        lines.append(f"main() : int = {main_body};")
        return "\n".join(lines)


def random_flow_program(seed: int, n_functions: int = 3) -> str:
    return _ProgramBuilder(seed, n_functions).build()


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=50, deadline=None)
def test_primal_and_dual_agree_on_random_programs(seed):
    source = random_flow_program(seed)
    primal = FlowAnalysis(source)
    dual = DualFlowAnalysis(source)
    assert primal.flow_pairs() == dual.flow_pairs(), f"seed {seed}\n{source}"


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=30, deadline=None)
def test_flow_relation_is_transitively_consistent(seed):
    """Sanity invariant: matched flow composes — if A→B and B→C as
    *labels of the same value chain*, the analysis never reports a pair
    it cannot witness (all reported pairs carry an accepting class)."""
    source = random_flow_program(seed)
    analysis = FlowAnalysis(source)
    for src, dst in analysis.flow_pairs():
        annotations = analysis.flow_annotations(src, dst)
        assert any(
            analysis.system.algebra.is_accepting(ann) for ann in annotations
        )


def test_regression_seeds():
    for seed in (0, 3, 17, 404, 9001):
        source = random_flow_program(seed, n_functions=4)
        primal = FlowAnalysis(source)
        dual = DualFlowAnalysis(source)
        assert primal.flow_pairs() == dual.flow_pairs(), seed
