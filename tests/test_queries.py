"""Tests for the query engine: reachability, PN, witnesses, terms."""

from repro.core.annotations import MonoidAlgebra
from repro.core.queries import Reachability, least_solution_terms, trace_lower
from repro.core.solver import Solver
from repro.core.terms import Constructor, Variable, constant
from repro.dfa.gallery import one_bit_machine, privilege_machine


def build_call_like_system():
    """pc flows into a 'function' through a constructor; the error event
    happens inside; the exit is projected back to the caller."""
    algebra = MonoidAlgebra(privilege_machine())
    solver = Solver(algebra)
    o = Constructor("o1", 1)
    pc = constant("pc")
    caller, entry, inner, exit_, after = (
        Variable(n) for n in ("S0", "En", "In", "Ex", "S1")
    )
    solver.add(pc, caller, algebra.word(["seteuid_zero"]))
    solver.add(o(caller), entry)
    solver.add(entry, inner, algebra.word(["execl"]))
    solver.add(inner, exit_)
    solver.add(o.proj(1, exit_), after)
    return algebra, solver, pc, caller, entry, inner, exit_, after


class TestReachability:
    def test_matched_only_excludes_nested(self):
        algebra, solver, pc, caller, entry, inner, exit_, after = (
            build_call_like_system()
        )
        matched = Reachability(solver, through_constructors=False)
        # pc is nested inside o(...) at the entry — matched-only misses it.
        assert not matched.annotations_of(entry, pc)
        # but the projected return edge carries it to 'after'.
        assert matched.annotations_of(after, pc)

    def test_pn_descends_into_pending_calls(self):
        algebra, solver, pc, caller, entry, inner, exit_, after = (
            build_call_like_system()
        )
        pn = Reachability(solver, through_constructors=True)
        annotations = pn.annotations_of(inner, pc)
        assert algebra.word(["seteuid_zero", "execl"]) in annotations
        assert pn.reaches(inner, pc)

    def test_annotation_composition_through_nesting(self):
        algebra, solver, pc, *_rest, after = build_call_like_system()
        pn = Reachability(solver, through_constructors=True)
        # At the return point the full word seteuid_zero·execl is seen.
        assert algebra.word(["seteuid_zero", "execl"]) in pn.annotations_of(
            after, pc
        )

    def test_constants_listing(self):
        _algebra, solver, pc, caller, *_ = build_call_like_system()
        reach = Reachability(solver, through_constructors=True)
        assert pc in reach.constants(caller)

    def test_custom_accepting_predicate(self):
        algebra, solver, pc, caller, *_ = build_call_like_system()
        reach = Reachability(solver, through_constructors=True)
        machine = algebra.machine
        priv_state = machine.run(["seteuid_zero"])
        assert reach.reaches(
            caller, pc, accepting=lambda ann: ann(machine.start) == priv_state
        )


class TestWitnesses:
    def test_trace_lists_infos_in_path_order(self):
        algebra = MonoidAlgebra(one_bit_machine())
        solver = Solver(algebra)
        c = constant("c")
        chain = [Variable(f"v{i}") for i in range(4)]
        solver.add(c, chain[0], info="seed")
        for i in range(3):
            solver.add(chain[i], chain[i + 1], algebra.symbol("g"), info=f"edge{i}")
        fact = ("lower", chain[3], c, algebra.symbol("g"))
        assert trace_lower(solver, fact) == ["seed", "edge0", "edge1", "edge2"]

    def test_witness_through_constructor(self):
        algebra, solver, pc, caller, entry, inner, exit_, after = (
            build_call_like_system()
        )
        reach = Reachability(solver, through_constructors=True)
        word = algebra.word(["seteuid_zero", "execl"])
        trace = reach.witness(inner, pc, word)
        assert isinstance(trace, list)  # infos were None here; shape only

    def test_missing_fact_has_empty_witness(self):
        algebra, solver, pc, caller, *_ = build_call_like_system()
        reach = Reachability(solver, through_constructors=True)
        assert reach.witness(caller, constant("ghost"), algebra.identity) == []


class TestLeastSolutionTerms:
    def test_flat_terms(self):
        solver = Solver()
        x = Variable("X")
        solver.add(constant("a"), x)
        solver.add(constant("b"), x)
        names = {t.constructor.name for t in least_solution_terms(solver, x)}
        assert names == {"a", "b"}

    def test_nested_terms(self):
        solver = Solver()
        o = Constructor("o", 1)
        x, y = Variable("X"), Variable("Y")
        solver.add(constant("a"), x)
        solver.add(o(x), y)
        terms = least_solution_terms(solver, y)
        erased = {t.erase() for t in terms}
        assert ("o", (("a", ()),)) in erased

    def test_depth_bound_on_recursive_system(self):
        solver = Solver()
        box = Constructor("box", 1)
        x = Variable("X")
        solver.add(constant("a"), x)
        solver.add(box(x), x)
        terms = least_solution_terms(solver, x, max_depth=3)
        assert terms
        assert max(t.depth() for t in terms) <= 3

    def test_annotations_appended_at_all_levels(self):
        algebra = MonoidAlgebra(one_bit_machine())
        solver = Solver(algebra)
        o = Constructor("o", 1)
        x, y = Variable("X"), Variable("Y")
        solver.add(constant("a"), x, algebra.symbol("g"))
        solver.add(o(x), y, algebra.symbol("k"))
        terms = least_solution_terms(solver, y)
        (term,) = [t for t in terms if t.constructor.name == "o"]
        # outer level: ε then ·k = k; inner: g then ·k = k (last wins)
        assert term.annotation == algebra.symbol("k")
        assert term.children[0].annotation == algebra.then(
            algebra.symbol("g"), algebra.symbol("k")
        )

    def test_budget_cutoff(self):
        solver = Solver()
        x = Variable("X")
        for i in range(20):
            solver.add(constant(f"c{i}"), x)
        terms = least_solution_terms(solver, x, max_terms=5)
        assert len(terms) <= 5
