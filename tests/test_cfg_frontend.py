"""Tests for the mini-C lexer, parser, and AST utilities."""

import pytest

from repro.cfg import ast
from repro.cfg.lexer import LexError, Token, tokenize
from repro.cfg.parser import ParseError, parse_program


class TestLexer:
    def test_basic_tokens(self):
        tokens = list(tokenize("int x = 42;"))
        kinds = [t.kind for t in tokens]
        assert kinds == ["kw", "ident", "op", "number", "op"]

    def test_comments_skipped(self):
        tokens = list(tokenize("x; // comment\n/* block\ncomment */ y;"))
        idents = [t.value for t in tokens if t.kind == "ident"]
        assert idents == ["x", "y"]

    def test_preprocessor_skipped(self):
        tokens = list(tokenize("#include <stdio.h>\nint x;"))
        assert tokens[0].value == "int"

    def test_line_numbers(self):
        tokens = list(tokenize("a;\nb;\n\nc;"))
        lines = {t.value: t.line for t in tokens if t.kind == "ident"}
        assert lines == {"a": 1, "b": 2, "c": 4}

    def test_strings_and_chars(self):
        tokens = list(tokenize('f("hi \\"there\\"", \'x\');'))
        kinds = [t.kind for t in tokens]
        assert "string" in kinds and "char" in kinds

    def test_hex_numbers(self):
        tokens = list(tokenize("x = 0xFF;"))
        assert any(t.kind == "number" and t.value == "0xFF" for t in tokens)

    def test_lex_error(self):
        with pytest.raises(LexError):
            list(tokenize("int x = `;"))


class TestParser:
    def test_function_structure(self):
        program = parse_program("int main() { return 0; }")
        assert program.function_names == {"main"}
        main = program.function("main")
        assert main.params == ()

    def test_params(self):
        program = parse_program("void f(int a, char *b) { }")
        assert program.function("f").params == ("a", "b")

    def test_void_param_list(self):
        program = parse_program("void f(void) { }")
        assert program.function("f").params == ()

    def test_if_else(self):
        program = parse_program(
            "int main() { if (x) { a(); } else { b(); } return 0; }"
        )
        body = program.function("main").body.body
        assert isinstance(body[0], ast.If)
        assert body[0].orelse is not None

    def test_while_and_control(self):
        program = parse_program(
            "int main() { while (1) { if (x) break; continue; } }"
        )
        loop = program.function("main").body.body[0]
        assert isinstance(loop, ast.While)

    def test_for_desugars_to_while(self):
        program = parse_program(
            "int main() { for (int i = 0; i < 10; i = i + 1) { f(i); } }"
        )
        outer = program.function("main").body.body[0]
        assert isinstance(outer, ast.Block)
        assert isinstance(outer.body[0], ast.Decl)
        assert isinstance(outer.body[1], ast.While)

    def test_expression_precedence(self):
        program = parse_program("int main() { x = 1 + 2 * 3; }")
        stmt = program.function("main").body.body[0]
        assign = stmt.expr
        assert isinstance(assign, ast.Assign)
        assert isinstance(assign.value, ast.Binary)
        assert assign.value.op == "+"
        assert assign.value.right.op == "*"

    def test_calls_with_nested_args(self):
        program = parse_program("int main() { f(g(1), h()); }")
        calls = list(ast.calls_in(program.function("main").body.body[0].expr))
        assert [c.callee for c in calls] == ["g", "h", "f"]

    def test_unary_and_postfix(self):
        parse_program("int main() { x = -y; p = &z; *p = 1; i++; a[i] = 2; }")

    def test_struct_members(self):
        parse_program("int main() { s.field = p->other; }")

    def test_ternary(self):
        parse_program("int main() { x = c ? a : b; }")

    def test_unreachable_code_tolerated(self):
        parse_program("int main() { return 0; x = 1; }")

    @pytest.mark.parametrize(
        "source",
        [
            "int main() { ",
            "main() { }",
            "int main() { x = ; }",
            "int main() { if x { } }",
            "int main() { x[0](); }",  # only direct calls
        ],
    )
    def test_parse_errors(self, source):
        with pytest.raises(ParseError):
            parse_program(source)


class TestCallsIn:
    def test_evaluation_order(self):
        program = parse_program("int main() { x = a(b(), c()) + d(); }")
        stmt = program.function("main").body.body[0]
        calls = [c.callee for c in ast.calls_in(stmt.expr)]
        assert calls == ["b", "c", "a", "d"]
