"""Broad-sweep tests for smaller surfaces: spec round-trips, lazy
monoids, render/CLI corners, CFG plumbing, and result helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import build_cfg
from repro.core.errors import ConstraintError
from repro.core.semantics import ReferenceSemantics, WordConstraint
from repro.core.terms import Constructor, Variable, constant
from repro.dfa.gallery import FILE_STATE_SPEC, PRIVILEGE_SPEC, one_bit_machine
from repro.dfa.monoid import TransitionMonoid
from repro.dfa.spec import parse_spec


class TestSpecRoundTrip:
    @pytest.mark.parametrize("text", [PRIVILEGE_SPEC, FILE_STATE_SPEC])
    def test_gallery_specs_round_trip(self, text):
        spec = parse_spec(text)
        reparsed = parse_spec(spec.unparse())
        assert reparsed.states == spec.states
        assert reparsed.start == spec.start
        assert reparsed.accepting == spec.accepting
        assert reparsed.transitions == spec.transitions
        assert reparsed.symbols == spec.symbols

    def test_unparse_stateless_state(self):
        spec = parse_spec("start accept state Lonely;")
        text = spec.unparse()
        assert "start accept state Lonely;" in text
        assert parse_spec(text).states == ["Lonely"]

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_random_specs_round_trip(self, seed):
        import random

        rng = random.Random(seed)
        n_states = rng.randrange(1, 5)
        states = [f"S{i}" for i in range(n_states)]
        symbols = [f"sym{i}" for i in range(rng.randrange(1, 4))]
        lines = []
        for i, state in enumerate(states):
            prefix = "start " if i == 0 else ""
            accept = "accept " if rng.random() < 0.4 else ""
            used = [s for s in symbols if rng.random() < 0.6]
            if used:
                lines.append(f"{prefix}{accept}state {state} :")
                for j, sym in enumerate(used):
                    target = rng.choice(states)
                    end = ";" if j == len(used) - 1 else ""
                    lines.append(f"  | {sym} -> {target}{end}")
            else:
                lines.append(f"{prefix}{accept}state {state};")
        spec = parse_spec("\n".join(lines))
        assert parse_spec(spec.unparse()).transitions == spec.transitions


class TestLazyMonoid:
    def test_lazy_equals_eager(self):
        machine = one_bit_machine()
        eager = TransitionMonoid(machine, eager=True)
        lazy = TransitionMonoid(machine, eager=False)
        assert eager.elements() == lazy.elements()
        f_g = eager.generator("g")
        assert eager.then(f_g, f_g) == lazy.then(f_g, f_g)

    def test_accepting_functions_lazy(self):
        machine = one_bit_machine()
        lazy = TransitionMonoid(machine, eager=False)
        assert lazy.generator("g") in lazy.accepting_functions()


class TestReferenceSemanticsEdges:
    def test_rejects_constructed_rhs(self):
        machine = one_bit_machine()
        box = Constructor("box", 1)
        with pytest.raises(ConstraintError):
            ReferenceSemantics(
                machine,
                [WordConstraint(constant("c"), box(Variable("X")))],  # type: ignore[arg-type]
            )

    def test_rejects_nonvariable_constructor_args(self):
        machine = one_bit_machine()
        box = Constructor("box", 1)
        with pytest.raises(ConstraintError):
            ReferenceSemantics(
                machine,
                [WordConstraint(box(constant("c")), Variable("X"))],
            )

    def test_depth_bound_respected(self):
        machine = one_bit_machine()
        box = Constructor("box", 1)
        x = Variable("X")
        reference = ReferenceSemantics(
            machine,
            [
                WordConstraint(constant("c"), x),
                WordConstraint(box(x), x),
            ],
            max_depth=3,
        )
        assert reference.terms_of(x)
        assert max(t.depth() for t in reference.terms_of(x)) <= 3

    def test_word_bound_respected(self):
        machine = one_bit_machine()
        x, y = Variable("X"), Variable("Y")
        reference = ReferenceSemantics(
            machine,
            [
                WordConstraint(constant("c"), x),
                WordConstraint(x, y, ("g",) * 10),
            ],
            max_word=4,
        )
        assert not reference.terms_of(y)


class TestCFGPlumbing:
    def test_predecessors(self):
        cfg = build_cfg("int main() { a(); b(); }")
        b_node = next(n for n in cfg.all_nodes() if n.call and n.call.callee == "b")
        preds = list(cfg.predecessors(b_node))
        assert preds
        assert all(b_node.id in [s.id for s in cfg.successors(p)] for p in preds)

    def test_duplicate_edges_ignored(self):
        from repro.cfg.graph import CFGNode, ProgramCFG

        cfg = ProgramCFG()
        a = cfg.add_node(CFGNode(0, "f", "stmt"))
        b = cfg.add_node(CFGNode(1, "f", "stmt"))
        cfg.add_edge(a, b)
        cfg.add_edge(a, b)
        assert cfg.edge_count() == 1

    def test_describe_variants(self):
        cfg = build_cfg('void f(int p) { } int main() { f(g(1)); x = "s"; }')
        texts = {n.describe() for n in cfg.all_nodes()}
        assert any("f(" in t for t in texts)
        assert any(":entry" in t for t in texts)


class TestResultHelpers:
    def test_violation_lines(self):
        from repro.modelcheck import AnnotatedChecker, simple_privilege_property

        cfg = build_cfg(
            'int main() { seteuid(0); execl("/x", 0); done(); }'
        )
        result = AnnotatedChecker(cfg, simple_privilege_property()).check()
        assert result.violation_lines()
        assert all(isinstance(line, int) for line in result.violation_lines())

    def test_mops_violation_lines(self):
        from repro.modelcheck import simple_privilege_property
        from repro.mops import MopsChecker

        cfg = build_cfg('int main() { seteuid(0); execl("/x", 0); }')
        result = MopsChecker(cfg, simple_privilege_property()).check()
        assert result.violation_lines()

    def test_inconsistency_str(self):
        from repro.core.errors import Inconsistency

        text = str(Inconsistency("a", "b", "f"))
        assert "inconsistent" in text


class TestSolverCorners:
    def test_upper_bounds_view(self):
        from repro.core.solver import Solver

        solver = Solver()
        box = Constructor("box", 1)
        x, y = Variable("X"), Variable("Y")
        solver.add(x, box(y))
        assert list(solver.upper_bounds(x))

    def test_projection_sinks_view(self):
        from repro.core.solver import Solver

        solver = Solver()
        box = Constructor("box", 1)
        x, z = Variable("X"), Variable("Z")
        solver.add(box.proj(1, x), z)
        assert list(solver.projection_sinks(x))

    def test_constructed_both_sides_direct_meet(self):
        from repro.core.solver import Solver

        solver = Solver()
        box = Constructor("box", 1)
        a, b = Variable("A"), Variable("B")
        solver.add(box(a), box(b))
        assert (b, solver.algebra.identity) in set(solver.edges_from(a))

    def test_variance_length_checked(self):
        with pytest.raises(ConstraintError):
            Constructor("bad", 2, variance=(True,))


class TestSpecializer:
    """The §8 specializer output: F_M plus the ∘ lookup table."""

    def test_composition_table_consistent(self):
        from repro.dfa.gallery import privilege_machine

        monoid = TransitionMonoid(privilege_machine())
        elements, table = monoid.composition_table()
        assert len(elements) == monoid.size()
        index = {fn: i for i, fn in enumerate(elements)}
        for i, first in enumerate(elements):
            for j, second in enumerate(elements):
                assert table[i][j] == index[first.then(second)]

    def test_identity_row_and_column(self):
        from repro.dfa.gallery import one_bit_machine

        monoid = TransitionMonoid(one_bit_machine())
        elements, table = monoid.composition_table()
        identity_index = elements.index(monoid.identity)
        for i in range(len(elements)):
            assert table[identity_index][i] == i
            assert table[i][identity_index] == i

    def test_cli_specialize(self, tmp_path, capsys):
        import json

        from repro.cli import main as cli_main

        spec_path = tmp_path / "p.spec"
        spec_path.write_text(
            "start state A : | s -> B;\naccept state B;\n"
        )
        out_path = tmp_path / "table.json"
        assert cli_main(["specialize", str(spec_path), "-o", str(out_path)]) == 0
        data = json.loads(out_path.read_text())
        n = len(data["functions"])
        assert len(data["compose"]) == n
        assert all(len(row) == n for row in data["compose"])
        assert data["accepting_functions"]

    def test_cli_specialize_stdout(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        spec_path = tmp_path / "p.spec"
        spec_path.write_text("start accept state A : | s -> A;\n")
        assert cli_main(["specialize", str(spec_path), "--compact"]) == 0
        assert '"compose"' in capsys.readouterr().out
