"""Shared-memory arena tests (:mod:`repro.core.shm`).

The contract under test: publishing compiled algebra tables or solved
flat columns to a shared-memory segment and attaching them elsewhere is
*invisible* to every consumer — identical composition results, identical
canonical solved forms, identical behavior after further edits (the
copy-on-write thaw) — while moving only a segment name across process
boundaries.  Lifecycle: refcounted arenas, checksum-verified attach,
stale-orphan reaping after ``kill -9``.
"""

import os
import signal
import subprocess
import sys
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import shm
from repro.core.annotations import CompiledGenKillAlgebra
from repro.core.errors import SnapshotCorrupt
from repro.core.flatcore import FlatSolver
from repro.core.solver import Solver
from repro.core.terms import Variable, constant
from tests.test_flatcore import (
    _canonical,
    _genkill_algebra,
    _privilege_algebra,
    _random_constraints,
)

pytestmark = pytest.mark.skipif(
    not shm.shm_available(), reason="no usable shared memory on this platform"
)


def _solved_flat(algebra, constraints, cycle_elim=True):
    solver = FlatSolver(algebra, cycle_elim=cycle_elim)
    solver.add_many(constraints)
    return solver


# -- arena plumbing ------------------------------------------------------------


class TestArenaLifecycle:
    def test_publish_is_idempotent_per_fingerprint(self):
        # A fingerprint nothing else in the suite publishes: arenas
        # dedupe process-wide, so asserting the final decref unlinks
        # needs a refcount that provably starts at zero.
        algebra = CompiledGenKillAlgebra(5)
        one = shm.publish_algebra(algebra)
        two = shm.publish_algebra(algebra)
        try:
            assert one is two
            assert two.refs >= 2
        finally:
            two.decref()
            one.decref()
        assert not os.path.exists(f"/dev/shm/{one.name}")

    def test_publish_dedupes_against_resident_arenas(self):
        # The suite-wide case: an arena another subsystem already
        # published (e.g. the dispatch preload) is returned as-is, and
        # balanced decrefs leave the prior holder's mapping intact.
        algebra = _privilege_algebra()
        one = shm.publish_algebra(algebra)
        baseline = one.refs - 1
        two = shm.publish_algebra(algebra)
        try:
            assert one is two
            assert two.refs == baseline + 2
        finally:
            two.decref()
            one.decref()
        assert one.refs == baseline
        if baseline:
            assert os.path.exists(f"/dev/shm/{one.name}")

    def test_reattach_shares_the_mapping(self):
        algebra = _privilege_algebra()
        owned = shm.publish_algebra(algebra)
        try:
            again = shm.attach(owned.name)
            assert again is owned
            again.decref()
        finally:
            owned.decref()

    def test_corrupt_payload_is_rejected(self):
        # Unique fingerprint: this test flips bytes in (and unlinks)
        # the segment, which must never hit an arena another test is
        # still attached to via the process-wide dedupe.
        algebra = CompiledGenKillAlgebra(6)
        owned = shm.publish_algebra(algebra)
        name = owned.name
        try:
            # Flip one payload byte behind the checksum's back.
            seg = shm._open_segment(name)
            try:
                offset = shm._HEADER_LEN + 16
                seg.buf[offset] = seg.buf[offset] ^ 0xFF
            finally:
                seg.close()
            # The registry would short-circuit to the live mapping;
            # drop it so attach verifies bytes like a fresh process.
            with shm._LOCK:
                shm._REGISTRY.pop(name, None)
            with pytest.raises(SnapshotCorrupt):
                shm.attach(name)
        finally:
            owned.unlink()

    def test_env_var_disables_publication(self, monkeypatch):
        monkeypatch.setenv(shm.DISABLE_ENV, "1")
        assert not shm.shm_available()
        monkeypatch.setenv(shm.DISABLE_ENV, "0")
        assert shm.shm_available()

    def test_cleanup_stale_reaps_dead_owner(self):
        child = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(300)"]
        )
        try:
            pid = child.pid
        finally:
            child.kill()
            child.wait()
        name = f"{shm._PREFIX}{pid}.1.{os.urandom(3).hex()}.orphan"
        seg = shm._open_segment(name, create=True, size=64)
        seg.close()
        assert os.path.exists(f"/dev/shm/{name}")
        assert shm.cleanup_stale() >= 1
        assert not os.path.exists(f"/dev/shm/{name}")

    def test_cleanup_stale_spares_live_owners(self):
        algebra = _privilege_algebra()
        owned = shm.publish_algebra(algebra)
        try:
            shm.cleanup_stale()
            assert os.path.exists(f"/dev/shm/{owned.name}")
        finally:
            owned.decref()


# -- compiled algebras over the arena -------------------------------------------


class TestAlgebraAttach:
    def test_monoid_tables_are_identical(self):
        original = _privilege_algebra()
        owned = shm.publish_algebra(original)
        try:
            attached, arena = shm.attach_algebra(owned.name)
            n = original.size()
            assert attached.size() == n
            for a in range(n):
                for b in range(n):
                    assert attached.then(a, b) == original.then(a, b)
            for i in range(n):
                assert attached.is_live(i) == original.is_live(i)
                assert attached.is_accepting(i) == original.is_accepting(i)
                assert attached.state_after(i) == original.state_after(i)
                assert attached.decode(i) == original.decode(i)
            assert attached.identity_index == original.identity_index
            arena.decref()
        finally:
            owned.decref()

    def test_monoid_then_many_matches(self):
        original = _privilege_algebra()
        if original.then_many is None:
            pytest.skip("numpy batch backend not present")
        owned = shm.publish_algebra(original)
        try:
            attached, arena = shm.attach_algebra(owned.name)
            n = original.size()
            column = list(range(n)) * 2
            for second in range(n):
                assert attached.then_many(
                    column, len(column), second
                ) == original.then_many(column, len(column), second)
            arena.decref()
        finally:
            owned.decref()

    def test_genkill_roundtrip(self):
        original = _genkill_algebra()
        owned = shm.publish_algebra(original)
        try:
            attached, arena = shm.attach_algebra(owned.name)
            assert attached.n_bits == original.n_bits
            a = original.of_effect([0, 2], [1])
            b = original.of_effect([3], [0])
            assert attached.then(a, b) == original.then(a, b)
            assert attached.identity_index == original.identity_index
            arena.decref()
        finally:
            owned.decref()

    def test_fingerprint_mismatch_is_rejected(self):
        owned = shm.publish_algebra(_privilege_algebra())
        try:
            with pytest.raises(SnapshotCorrupt):
                shm.attach_algebra(owned.name, expected_fingerprint="nope")
        finally:
            owned.decref()

    def test_attached_algebra_solves_identically(self):
        algebra, constraints = _random_constraints(11, genkill=False)
        owned = shm.publish_algebra(algebra)
        try:
            attached, arena = shm.attach_algebra(owned.name)
            assert _canonical(_solved_flat(algebra, constraints)) == _canonical(
                _solved_flat(attached, constraints)
            )
            arena.decref()
        finally:
            owned.decref()


# -- solved columns over the arena ----------------------------------------------


class TestColumnTransfer:
    def _roundtrip(self, algebra, constraints, cycle_elim=True):
        solved = _solved_flat(algebra, constraints, cycle_elim)
        fingerprint = shm.algebra_fingerprint(algebra)
        name, resident = shm.publish_columns(solved, fingerprint)
        assert resident > 0
        attached = shm.attach_columns(name, algebra)
        return solved, attached

    def test_canonical_forms_match(self):
        algebra, constraints = _random_constraints(5, genkill=False)
        solved, attached = self._roundtrip(algebra, constraints)
        assert _canonical(attached) == _canonical(solved)
        assert attached.fact_count() == solved.fact_count()

    def test_segment_name_is_unlinked_on_adoption(self):
        algebra, constraints = _random_constraints(5, genkill=False)
        solved = _solved_flat(algebra, constraints)
        name, _ = shm.publish_columns(
            solved, shm.algebra_fingerprint(algebra)
        )
        assert os.path.exists(f"/dev/shm/{name}")
        shm.attach_columns(name, algebra)
        assert not os.path.exists(f"/dev/shm/{name}")

    def test_post_attach_edits_thaw_frozen_columns(self):
        algebra, constraints = _random_constraints(9, genkill=False)
        solved, attached = self._roundtrip(algebra, constraints)
        extra = [
            (constant("fresh"), Variable("v0"), algebra.identity_index),
            (Variable("v0"), Variable("v1"), algebra.identity_index),
            (Variable("v1"), Variable("v0"), algebra.identity_index),
        ]
        solved.add_many(extra)
        attached.add_many(extra)
        assert _canonical(attached) == _canonical(solved)

    def test_wrong_algebra_is_rejected(self):
        algebra, constraints = _random_constraints(5, genkill=False)
        solved = _solved_flat(algebra, constraints)
        name, _ = shm.publish_columns(
            solved, shm.algebra_fingerprint(algebra)
        )
        try:
            with pytest.raises(SnapshotCorrupt):
                shm.attach_columns(name, _genkill_algebra())
        finally:
            arena = shm.attach(name)
            arena.unlink()
            arena.decref()

    def test_interrupted_solve_refuses_publication(self):
        from repro.core.budget import Budget
        from repro.core.errors import SolverInterrupted

        algebra, constraints = _random_constraints(23, genkill=False)
        solver = FlatSolver(algebra, budget=Budget(max_steps=2))
        with pytest.raises(SolverInterrupted):
            solver.add_many(constraints)
        assert solver.pending_count()
        with pytest.raises(ValueError):
            shm.publish_columns(solver, shm.algebra_fingerprint(algebra))

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        genkill=st.booleans(),
        cycle_elim=st.booleans(),
    )
    def test_object_equals_flat_equals_shm_flat(
        self, seed, genkill, cycle_elim
    ):
        """The tentpole equivalence: object ≡ flat ≡ shm-flat."""
        algebra, constraints = _random_constraints(seed, genkill)
        obj = Solver(
            algebra, record_reasons=False, cycle_elim=cycle_elim
        )
        obj.add_many(constraints)
        flat = _solved_flat(algebra, constraints, cycle_elim)
        assert _canonical(flat) == _canonical(obj), seed

        # ... through an shm-published algebra ...
        owned = shm.publish_algebra(algebra)
        try:
            attached_algebra, arena = shm.attach_algebra(owned.name)
            over_arena = _solved_flat(
                attached_algebra, constraints, cycle_elim
            )
            assert _canonical(over_arena) == _canonical(obj), seed
            arena.decref()
        finally:
            owned.decref()

        # ... and through shm-transferred columns.
        name, _ = shm.publish_columns(
            flat, shm.algebra_fingerprint(algebra)
        )
        adopted = shm.attach_columns(name, algebra)
        assert _canonical(adopted) == _canonical(obj), seed


# -- sharded transfer + pool leak behavior ---------------------------------------


class TestShardedTransfer:
    def test_process_pool_prefers_shm_and_pickle_forces_fallback(self):
        from concurrent.futures import ProcessPoolExecutor

        from repro.core.partition import solve_sharded

        algebra, constraints = _random_constraints(42, genkill=False)
        serial = solve_sharded(constraints, algebra, shards=2)
        with ProcessPoolExecutor(max_workers=2) as pool:
            fast = solve_sharded(
                constraints, algebra, shards=2, executor=pool
            )
            slow = solve_sharded(
                constraints,
                algebra,
                shards=2,
                executor=pool,
                transfer="pickle",
            )
        assert set(fast.canonical_facts()) == set(serial.canonical_facts())
        assert set(slow.canonical_facts()) == set(serial.canonical_facts())
        assert fast.transfer["mode"] == "shm"
        assert fast.transfer["shm_attaches"] == fast.shards
        assert fast.transfer["pickle_fallbacks"] == 0
        assert slow.transfer["mode"] == "pickle"
        assert slow.transfer["shm_attaches"] == 0
        # The acceptance bar: handles are >=10x smaller than dumps.
        assert fast.transfer["bytes"] * 10 <= slow.transfer["bytes"]

    def test_disable_env_falls_back_to_pickle(self, monkeypatch):
        from concurrent.futures import ProcessPoolExecutor

        from repro.core.partition import solve_sharded

        monkeypatch.setenv(shm.DISABLE_ENV, "1")
        algebra, constraints = _random_constraints(42, genkill=False)
        with ProcessPoolExecutor(max_workers=2) as pool:
            solution = solve_sharded(
                constraints, algebra, shards=2, executor=pool
            )
        assert solution.transfer["mode"] == "pickle"
        assert solution.transfer["shm_attaches"] == 0

    def test_orphaned_arena_reaped_on_pool_heal(self):
        """A ``kill -9`` orphan disappears when the pool self-heals."""
        from repro.service.dispatch import DispatchPool
        from repro.service.engine import EngineError

        program = "int main() { open(\"f\"); close(\"f\"); return 0; }"
        with DispatchPool(workers=1, preload=["file-state"]) as pool:
            pool.execute(
                "check", {"program": program, "property": "file-state"}
            )
            # Forge the orphan: a segment owned by an already-dead pid,
            # exactly what a worker killed mid-hand-off leaves behind.
            child = subprocess.Popen(
                [sys.executable, "-c", "import time; time.sleep(300)"]
            )
            dead_pid = child.pid
            child.kill()
            child.wait()
            orphan = (
                f"{shm._PREFIX}{dead_pid}.7.{os.urandom(3).hex()}.columns"
            )
            seg = shm._open_segment(orphan, create=True, size=128)
            seg.close()
            assert os.path.exists(f"/dev/shm/{orphan}")

            (worker_pid,) = pool.worker_pids()
            os.kill(worker_pid, signal.SIGKILL)
            deadline = time.time() + 60
            healed = False
            while time.time() < deadline:
                try:
                    pool.execute(
                        "check",
                        {"program": program, "property": "file-state"},
                    )
                    if healed:
                        break
                except EngineError:
                    healed = True
                time.sleep(0.1)
            assert pool.rebuilds >= 1
            assert not os.path.exists(f"/dev/shm/{orphan}")
            assert pool.metrics.get("shm.stale_reaped") >= 1
