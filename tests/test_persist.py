"""Tests for serialization (persistence) and backtracking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.annotations import MonoidAlgebra
from repro.core.persist import (
    dfa_from_dict,
    dfa_to_dict,
    dump_solver,
    load_solver,
)
from repro.core.solver import Solver
from repro.core.terms import Constructor, Variable, constant
from repro.dfa.gallery import one_bit_machine, pair_machine, privilege_machine


def facts_snapshot(solver: Solver):
    snapshot = {}
    for var in solver.variables():
        snapshot[var] = (
            frozenset(solver.lower_bounds(var)),
            frozenset(solver.upper_bounds(var)),
            frozenset(solver.edges_from(var)),
            frozenset(solver.projection_sinks(var)),
        )
    return snapshot


class TestDFASerialization:
    @pytest.mark.parametrize(
        "machine", [one_bit_machine(), privilege_machine(), pair_machine()],
        ids=["one-bit", "privilege", "pair"],
    )
    def test_round_trip(self, machine):
        loaded = dfa_from_dict(dfa_to_dict(machine))
        assert loaded.n_states == machine.n_states
        assert loaded.alphabet == machine.alphabet
        assert loaded.start == machine.start
        assert loaded.accepting == machine.accepting
        assert dict(loaded.delta) == dict(machine.delta)

    def test_tuple_symbols_round_trip(self):
        # the pair machine's symbols are nested tuples
        machine = pair_machine()
        loaded = dfa_from_dict(dfa_to_dict(machine))
        for word in machine.words(2):
            assert loaded.accepts(word)

    def test_json_safe(self):
        import json

        json.dumps(dfa_to_dict(privilege_machine()))


def build_sample_solver() -> Solver:
    algebra = MonoidAlgebra(privilege_machine())
    solver = Solver(algebra)
    o = Constructor("o1", 1)
    pc = constant("pc")
    a, entry, exit_, after = (Variable(n) for n in ("A", "En", "Ex", "Af"))
    solver.add(pc, a, algebra.word(["seteuid_zero"]))
    solver.add(o(a), entry)
    solver.add(entry, exit_, algebra.word(["execl"]))
    solver.add(o.proj(1, exit_), after)
    return solver


class TestSolverPersistence:
    def test_round_trip_preserves_facts(self):
        solver = build_sample_solver()
        loaded = load_solver(dump_solver(solver))
        assert facts_snapshot(loaded) == facts_snapshot(solver)

    def test_queries_work_after_load(self):
        from repro.core.queries import Reachability

        solver = build_sample_solver()
        loaded = load_solver(dump_solver(solver))
        reach = Reachability(loaded, through_constructors=True)
        pc = constant("pc")
        word = loaded.algebra.word(["seteuid_zero", "execl"])
        assert word in reach.annotations_of(Variable("Af"), pc)

    def test_online_solving_resumes_after_load(self):
        solver = build_sample_solver()
        loaded = load_solver(dump_solver(solver))
        # link new "client" constraints on top of the loaded library
        more = Variable("More")
        loaded.add(Variable("Af"), more)
        pc = constant("pc")
        word = loaded.algebra.word(["seteuid_zero", "execl"])
        assert loaded.has_lower(more, pc, word)

    def test_unannotated_round_trip(self):
        solver = Solver()
        solver.add(constant("c"), Variable("X"))
        solver.add(Variable("X"), Variable("Y"))
        loaded = load_solver(dump_solver(solver))
        assert facts_snapshot(loaded) == facts_snapshot(solver)

    def test_variance_preserved(self):
        solver = Solver()
        ref = Constructor("ref", 2, variance=(True, False))
        x, g, s = Variable("X"), Variable("G"), Variable("S")
        solver.add(ref(g, s), x)
        loaded = load_solver(dump_solver(solver))
        ((src, _ann),) = list(loaded.lower_bounds(x))
        assert src.constructor.variance == (True, False)

    def test_version_checked(self):
        import json

        bad = json.dumps({"version": 999})
        with pytest.raises(ValueError):
            load_solver(bad)

    def test_parametric_rejected(self):
        from repro.core.parametric import ParametricAlgebra
        from repro.dfa.gallery import file_state_machine

        solver = Solver(
            ParametricAlgebra(file_state_machine(), {"open": ("x",)})
        )
        with pytest.raises(TypeError):
            dump_solver(solver)


class TestBacktracking:
    def test_rollback_restores_snapshot(self):
        solver = build_sample_solver()
        before = facts_snapshot(solver)
        solver.mark()
        solver.add(constant("extra"), Variable("A"))
        solver.add(Variable("A"), Variable("Z"))
        assert facts_snapshot(solver) != before
        solver.rollback()
        assert facts_snapshot(solver) == before

    def test_nested_marks(self):
        solver = Solver()
        solver.add(constant("c"), Variable("X"))
        first = facts_snapshot(solver)
        solver.mark()
        solver.add(Variable("X"), Variable("Y"))
        second = facts_snapshot(solver)
        solver.mark()
        solver.add(Variable("Y"), Variable("Z"))
        solver.rollback()
        assert facts_snapshot(solver) == second
        solver.rollback()
        assert facts_snapshot(solver) == first

    def test_rollback_removes_inconsistencies(self):
        solver = Solver()
        solver.add(constant("c"), Variable("X"))
        solver.mark()
        solver.add(Variable("X"), constant("d"))
        assert not solver.is_consistent
        solver.rollback()
        assert solver.is_consistent

    def test_rollback_without_mark_raises(self):
        with pytest.raises(RuntimeError):
            Solver().rollback()

    def test_rederived_facts_survive(self):
        # A fact already present before the mark must not be removed
        # even if it is re-derivable from retracted constraints.
        solver = Solver()
        c = constant("c")
        x, y = Variable("X"), Variable("Y")
        solver.add(c, x)
        solver.add(x, y)
        solver.mark()
        solver.add(c, y)  # duplicate of a derived fact
        solver.rollback()
        assert solver.has_lower(y, c, solver.algebra.identity)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_mark_rollback_identity_on_random_systems(self, seed):
        import random

        machine = one_bit_machine()
        algebra = MonoidAlgebra(machine)
        solver = Solver(algebra)
        rng = random.Random(seed)
        variables = [Variable(f"v{i}") for i in range(6)]
        solver.add(constant("c"), variables[0])
        for _ in range(6):
            a, b = rng.randrange(6), rng.randrange(6)
            word = [rng.choice("gk")] if rng.random() < 0.5 else []
            solver.add(variables[a], variables[b], algebra.word(word))
        before = facts_snapshot(solver)
        solver.mark()
        for _ in range(6):
            a, b = rng.randrange(6), rng.randrange(6)
            solver.add(variables[a], variables[b], algebra.word("g"))
        solver.rollback()
        assert facts_snapshot(solver) == before


class TestMachineFingerprint:
    def test_stable_across_rebuilds(self):
        from repro.core.persist import machine_fingerprint

        assert machine_fingerprint(privilege_machine()) == machine_fingerprint(
            privilege_machine()
        )

    def test_distinguishes_machines(self):
        from repro.core.persist import machine_fingerprint

        fingerprints = {
            machine_fingerprint(m)
            for m in (one_bit_machine(), privilege_machine(), pair_machine(), None)
        }
        assert len(fingerprints) == 4

    def test_embedded_in_dump(self):
        import json

        from repro.core.persist import machine_fingerprint

        solver = build_sample_solver()
        data = json.loads(dump_solver(solver))
        assert data["fingerprint"] == machine_fingerprint(privilege_machine())

    def test_load_verifies_expected_fingerprint(self):
        from repro.core.persist import machine_fingerprint

        dump = dump_solver(build_sample_solver())
        # the right machine loads fine
        load_solver(dump, expected_fingerprint=machine_fingerprint(privilege_machine()))
        # replaying against a different property machine is refused
        with pytest.raises(ValueError, match="different property machine"):
            load_solver(
                dump, expected_fingerprint=machine_fingerprint(one_bit_machine())
            )

    def test_load_detects_swapped_machine(self):
        import json

        from repro.core.persist import dfa_to_dict

        # tamper: replace the embedded machine but keep the old fingerprint
        data = json.loads(dump_solver(build_sample_solver()))
        data["machine"] = dfa_to_dict(privilege_machine().minimize().complement())
        with pytest.raises(ValueError, match="corrupt"):
            load_solver(json.dumps(data))

    def test_unannotated_dump_round_trips_with_fingerprint(self):
        from repro.core.persist import UNANNOTATED_FINGERPRINT

        solver = Solver()
        solver.add(constant("c"), Variable("X"))
        load_solver(dump_solver(solver), expected_fingerprint=UNANNOTATED_FINGERPRINT)
