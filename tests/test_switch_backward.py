"""Tests for switch statements and backward (live-variables) dataflow."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import ast, build_cfg, reverse_cfg
from repro.cfg.parser import parse_program
from repro.dataflow import (
    AnnotatedBitVectorAnalysis,
    FunctionalBitVectorAnalysis,
    live_variable_problem,
)
from repro.modelcheck import AnnotatedChecker, simple_privilege_property
from repro.mops import MopsChecker
from tests.test_cross_validation import random_program


class TestSwitchParsing:
    def test_structure(self):
        program = parse_program(
            """
            int main() {
              switch (x) {
                case 1: a(); break;
                case 2: b();
                default: c(); break;
              }
            }
            """
        )
        stmt = program.function("main").body.body[0]
        assert isinstance(stmt, ast.Switch)
        assert [case.value for case in stmt.cases] == [1, 2, None]

    def test_empty_case_bodies(self):
        program = parse_program(
            "int main() { switch (x) { case 1: case 2: f(); } }"
        )
        stmt = program.function("main").body.body[0]
        assert stmt.cases[0].body == ()

    def test_rejects_garbage_arm(self):
        import pytest
        from repro.cfg.parser import ParseError

        with pytest.raises(ParseError):
            parse_program("int main() { switch (x) { f(); } }")


class TestSwitchCFG:
    VULN = """
    int main() {
      seteuid(0);
      switch (mode) {
        case 1: seteuid(getuid()); break;
        case 2: log_it();
        default: audit(); break;
      }
      execl("/bin/sh", 0);
      return 0;
    }
    """

    def test_violation_through_undropped_arms(self):
        cfg = build_cfg(self.VULN)
        prop = simple_privilege_property()
        annotated = AnnotatedChecker(cfg, prop).check().has_violation
        mops = MopsChecker(cfg, prop).check().has_violation
        assert annotated and mops

    def test_all_arms_dropping_is_clean(self):
        source = self.VULN.replace("log_it();", "seteuid(getuid());").replace(
            "audit();", "seteuid(getuid());"
        )
        cfg = build_cfg(source)
        prop = simple_privilege_property()
        assert not AnnotatedChecker(cfg, prop).check().has_violation
        assert not MopsChecker(cfg, prop).check().has_violation

    def test_fallthrough_edges_exist(self):
        cfg = build_cfg(
            "int main() { switch (x) { case 1: a(); case 2: b(); } }"
        )
        a_node = next(n for n in cfg.all_nodes() if n.call and n.call.callee == "a")
        # a's statement node falls through toward b's chain
        succ = list(cfg.successors(a_node))
        assert succ

    def test_no_default_falls_past(self):
        # Without a default arm, execution may skip every case.
        cfg = build_cfg(
            """
            int main() {
              seteuid(0);
              switch (x) { case 1: seteuid(getuid()); break; }
              execl("/bin/sh", 0);
            }
            """
        )
        prop = simple_privilege_property()
        assert AnnotatedChecker(cfg, prop).check().has_violation

    def test_break_in_switch_inside_loop(self):
        cfg = build_cfg(
            """
            int main() {
              while (x) {
                switch (y) { case 1: a(); break; }
                b();
              }
            }
            """
        )
        # the switch-break must land on b(), not exit the loop
        b_node = next(n for n in cfg.all_nodes() if n.call and n.call.callee == "b")
        assert list(cfg.predecessors(b_node))


class TestReverseCFG:
    def test_edges_flipped(self):
        cfg = build_cfg("int main() { a(); b(); }")
        rev = reverse_cfg(cfg)
        for node in cfg.all_nodes():
            for succ in cfg.successors(node):
                assert node.id in [p.id for p in rev.successors(succ)]

    def test_entry_exit_swapped(self):
        cfg = build_cfg("int main() { a(); }")
        rev = reverse_cfg(cfg)
        assert rev.main.entry is cfg.main.exit
        assert rev.main.exit is cfg.main.entry


class TestLiveVariables:
    def analyze(self, source, variables):
        cfg = build_cfg(source)
        rev = reverse_cfg(cfg)
        problem = live_variable_problem(cfg, variables)
        annotated = AnnotatedBitVectorAnalysis(rev, problem)
        classic = FunctionalBitVectorAnalysis(rev, problem)
        assert annotated.solution() == classic.solution()
        return cfg, problem, annotated

    def test_straight_line(self):
        cfg, problem, analysis = self.analyze(
            """
            int main() {
              int a = 1;
              int b = 2;
              use(a);
              b = 3;
              use(b);
              return 0;
            }
            """,
            ["a", "b"],
        )
        decl_a = next(
            n for n in cfg.all_nodes()
            if isinstance(n.stmt, ast.Decl) and n.stmt.name == "a"
        )
        live_out = {problem.facts[i] for i in analysis.may_hold(decl_a)}
        assert live_out == {"a"}  # b's first value is dead (overwritten)

    def test_branch_liveness(self):
        cfg, problem, analysis = self.analyze(
            """
            int main() {
              int a = 1;
              if (c) { use(a); } else { other(); }
              return 0;
            }
            """,
            ["a"],
        )
        decl_a = next(
            n for n in cfg.all_nodes()
            if isinstance(n.stmt, ast.Decl) and n.stmt.name == "a"
        )
        assert analysis.may_hold(decl_a) == {0}  # live on the then-path

    def test_dead_store(self):
        cfg, problem, analysis = self.analyze(
            """
            int main() {
              int a = 1;
              a = 2;
              use(a);
              return 0;
            }
            """,
            ["a"],
        )
        decl_a = next(
            n for n in cfg.all_nodes()
            if isinstance(n.stmt, ast.Decl) and n.stmt.name == "a"
        )
        # the initial value of a is never used: not live after the decl
        assert analysis.may_hold(decl_a) == frozenset()

    def test_interprocedural_use(self):
        cfg, problem, analysis = self.analyze(
            """
            void helper(int v) { use(v); }
            int main() {
              int a = 1;
              helper(a);
              return 0;
            }
            """,
            ["a"],
        )
        decl_a = next(
            n for n in cfg.all_nodes()
            if isinstance(n.stmt, ast.Decl) and n.stmt.name == "a"
        )
        assert analysis.may_hold(decl_a) == {0}  # used as a call argument


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=25, deadline=None)
def test_backward_solvers_agree_on_random_programs(seed):
    cfg = build_cfg(random_program(seed))
    rev = reverse_cfg(cfg)
    problem = live_variable_problem(cfg, ["x", "y"])
    annotated = AnnotatedBitVectorAnalysis(rev, problem)
    classic = FunctionalBitVectorAnalysis(rev, problem)
    assert annotated.solution() == classic.solution(), seed
