"""Tests for the analysis service wire protocol."""

import json

import pytest

from repro.service import protocol


class TestRequestRoundTrip:
    def test_encode_decode(self):
        request = protocol.Request(
            op="check",
            params={"program": "int main() {}", "property": "simple-privilege"},
            id=42,
        )
        decoded = protocol.decode_request(protocol.encode_request(request))
        assert decoded.op == "check"
        assert decoded.id == 42
        assert decoded.params["property"] == "simple-privilege"
        assert decoded.version == protocol.PROTOCOL_VERSION

    def test_one_line(self):
        request = protocol.Request(op="ping", id="a\nb")
        assert "\n" not in protocol.encode_request(request)

    @pytest.mark.parametrize("op", sorted(protocol.OPS))
    def test_all_ops_encode(self, op):
        params = {
            "check": {"program": "", "property": "p"},
            "dataflow": {"program": "", "track": ["f"]},
            "flow": {"program": ""},
            "patch": {"program": "", "property": "p"},
        }.get(op, {})
        decoded = protocol.decode_request(
            protocol.encode_request(protocol.Request(op=op, params=params))
        )
        assert decoded.op == op


class TestRequestErrors:
    def test_malformed_json(self):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.decode_request("{not json")
        assert err.value.code == protocol.E_MALFORMED

    def test_non_object(self):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.decode_request('["a", "list"]')
        assert err.value.code == protocol.E_MALFORMED

    def test_version_mismatch(self):
        line = json.dumps({"v": 999, "id": 7, "op": "ping", "params": {}})
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.decode_request(line)
        assert err.value.code == protocol.E_VERSION
        # the id is recovered so the error response can be correlated
        assert err.value.request_id == 7

    def test_missing_version(self):
        line = json.dumps({"op": "ping", "params": {}})
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.decode_request(line)
        assert err.value.code == protocol.E_VERSION

    def test_unknown_op(self):
        line = json.dumps({"v": 1, "op": "frobnicate", "params": {}})
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.decode_request(line)
        assert err.value.code == protocol.E_BAD_REQUEST

    def test_missing_required_params(self):
        line = json.dumps({"v": 1, "op": "check", "params": {"program": "x"}})
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.decode_request(line)
        assert err.value.code == protocol.E_BAD_REQUEST
        assert "property" in err.value.message

    def test_params_must_be_object(self):
        line = json.dumps({"v": 1, "op": "ping", "params": [1, 2]})
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.decode_request(line)
        assert err.value.code == protocol.E_BAD_REQUEST


class TestResponseRoundTrip:
    def test_ok(self):
        response = protocol.ok_response(3, {"answer": 42})
        decoded = protocol.decode_response(protocol.encode_response(response))
        assert decoded.ok and decoded.id == 3
        assert decoded.result == {"answer": 42}

    def test_error(self):
        response = protocol.error_response(9, protocol.E_PARSE, "line 3: nope")
        decoded = protocol.decode_response(protocol.encode_response(response))
        assert not decoded.ok
        assert decoded.error == {"code": protocol.E_PARSE, "message": "line 3: nope"}

    def test_error_codes_are_typed(self):
        with pytest.raises(AssertionError):
            protocol.error_response(1, "made-up-code", "nope")

    def test_version_checked(self):
        line = json.dumps({"v": 0, "id": 1, "ok": True, "result": {}})
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.decode_response(line)
        assert err.value.code == protocol.E_VERSION

    def test_malformed_response(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_response("}{")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_response(json.dumps({"v": 1, "ok": True}))
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_response(json.dumps({"v": 1, "ok": False}))
