"""Tests for constructors, set expressions, and annotated ground terms."""

import pytest

from repro.core.errors import ConstraintError
from repro.core.terms import (
    Constructed,
    Constructor,
    GroundTerm,
    Projection,
    Variable,
    VariableFactory,
    constant,
    ground,
    subterms,
)


class TestConstructors:
    def test_application(self):
        pair = Constructor("pair", 2)
        x, y = Variable("X"), Variable("Y")
        expr = pair(x, y)
        assert expr.constructor == pair
        assert expr.args == (x, y)
        assert str(expr) == "pair(X, Y)"

    def test_constant(self):
        c = constant("c")
        assert c.is_constant
        assert str(c) == "c"

    def test_arity_mismatch(self):
        pair = Constructor("pair", 2)
        with pytest.raises(ConstraintError):
            pair(Variable("X"))

    def test_negative_arity(self):
        with pytest.raises(ConstraintError):
            Constructor("bad", -1)

    def test_projection_bounds(self):
        pair = Constructor("pair", 2)
        x = Variable("X")
        assert pair.proj(1, x).index == 1
        assert pair.proj(2, x).index == 2
        with pytest.raises(ConstraintError):
            pair.proj(0, x)
        with pytest.raises(ConstraintError):
            pair.proj(3, x)

    def test_projection_str(self):
        pair = Constructor("pair", 2)
        assert str(pair.proj(2, Variable("Y"))) == "pair^-2(Y)"


class TestVariableFactory:
    def test_freshness(self):
        factory = VariableFactory()
        a, b = factory.fresh(), factory.fresh()
        assert a != b

    def test_hint(self):
        factory = VariableFactory()
        assert factory.fresh("arg").name.startswith("arg#")


class TestGroundTerms:
    def test_append_distributes_over_levels(self):
        # (c^w(t))·w' appends at every level (Section 2.3).
        inner = ground("c", ("a",))
        outer = GroundTerm(Constructor("o", 1), ("b",), (inner,))
        appended = outer.append(("z",))
        assert appended.annotation == ("b", "z")
        assert appended.children[0].annotation == ("a", "z")

    def test_append_identity(self):
        term = ground("c", ("a", "b"))
        assert term.append(()) == term

    def test_append_composition(self):
        term = ground("c", ())
        assert term.append(("x",)).append(("y",)) == term.append(("x", "y"))

    def test_depth_and_erase(self):
        leaf = ground("a", ())
        tree = GroundTerm(Constructor("f", 2), (), (leaf, ground("b", ())))
        assert tree.depth() == 2
        assert tree.erase() == ("f", (("a", ()), ("b", ())))

    def test_children_arity_checked(self):
        with pytest.raises(ConstraintError):
            GroundTerm(Constructor("f", 2), (), (ground("a"),))

    def test_subterms(self):
        leaf1, leaf2 = ground("a"), ground("b")
        tree = GroundTerm(Constructor("f", 2), (), (leaf1, leaf2))
        assert list(subterms(tree)) == [tree, leaf1, leaf2]

    def test_str(self):
        term = GroundTerm(Constructor("o", 1), ("g",), (ground("c", ()),))
        assert str(term) == "o^g(c^ε)"

    def test_hashable(self):
        assert ground("c", ("a",)) in {ground("c", ("a",))}
        assert ground("c", ("a",)) not in {ground("c", ("b",))}
