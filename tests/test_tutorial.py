"""Executable version of docs/TUTORIAL.md — the docs must not rot."""

from repro import AnnotatedConstraintSystem
from repro.cfg import build_cfg
from repro.dfa.monoid import TransitionMonoid
from repro.dfa.spec import parse_spec
from repro.modelcheck import AnnotatedChecker, DemandChecker, Property
from repro.mops import MopsChecker

SPEC = """
start state Idle :
    | begin -> Open;

state Open :
    | commit -> Idle
    | rollback -> Idle
    | network_send -> Error;

accept state Error;
"""

PROGRAM = """
void audit() { network_send(1); }
int main() {
  begin();
  if (ok) { commit(); } else { log_it(); }
  audit();
  return 0;
}
"""


def txn_property() -> Property:
    machine = parse_spec(SPEC).to_dfa()

    def event_of(node):
        call = node.call
        if call is None:
            return None
        if call.callee in ("begin", "commit", "rollback", "network_send"):
            return (call.callee, None)
        return None

    return Property("txn", machine, event_of)


def test_step1_specialization_is_small():
    machine = parse_spec(SPEC).to_dfa()
    assert TransitionMonoid(machine).size() < 40


def test_step3_violation_with_trace_and_stack():
    prop = txn_property()
    cfg = build_cfg(PROGRAM)
    checker = AnnotatedChecker(cfg, prop)
    result = checker.check(traces=True)
    assert result.has_violation
    violation = min(result.violations, key=lambda v: v.node.id)
    assert violation.trace
    # the violating statement is inside audit(), with a pending frame
    reach = checker.reachability()
    audit_nodes = [n for n in cfg.all_nodes() if n.function == "audit"]
    stacks = [
        reach.stack_of(checker.node_var(node), checker.pc, ann)
        for node in audit_nodes
        for ann in reach.annotations_of(checker.node_var(node), checker.pc)
        if checker.algebra.is_accepting(ann)
    ]
    assert any(len(stack) == 1 for stack in stacks)


def test_step3_fixed_program_is_clean():
    prop = txn_property()
    fixed = PROGRAM.replace("log_it();", "rollback();")
    assert not AnnotatedChecker(build_cfg(fixed), prop).check().has_violation


def test_step4_baseline_agrees():
    prop = txn_property()
    for source in (PROGRAM, PROGRAM.replace("log_it();", "rollback();")):
        cfg = build_cfg(source)
        annotated = AnnotatedChecker(cfg, prop).check().has_violation
        mops = MopsChecker(cfg, prop).check().has_violation
        assert annotated == mops


def test_step5_demand_engine_agrees():
    prop = txn_property()
    cfg = build_cfg(PROGRAM)
    assert DemandChecker(cfg, prop).has_violation()


def test_step6_hand_wired_system():
    machine = parse_spec(SPEC).to_dfa()
    system = AnnotatedConstraintSystem(machine)
    pc = system.constant("pc")
    entry, after_begin, after_send = (
        system.var(n) for n in ("S0", "S1", "S2")
    )
    system.add(pc, entry, info="entry")
    system.add(entry, after_begin, "begin", info="begin")
    system.add(after_begin, after_send, "network_send", info="send")
    assert system.reaches(after_send, pc)
    witness = system.witness(
        after_send, pc, system.annotation(["begin", "network_send"])
    )
    assert witness == ["entry", "begin", "send"]
