"""Unit tests for the crash-durable session journal and its plumbing.

Covers the checksummed record framing in ``repro.core.persist``, the
:class:`~repro.service.journal.SessionJournal` write/load lifecycle
(append, fsync batching, compaction, quarantine), the engine's
idempotency-key handling, and end-to-end deadline propagation through
engine and server.
"""

import json
import time

import pytest

from repro.core.errors import JournalCorrupt
from repro.core.persist import (
    JOURNAL_MAGIC,
    frame_journal_record,
    parse_journal_record,
    read_journal,
)
from repro.service import (
    AnalysisEngine,
    AnalysisServer,
    EngineError,
    SessionJournal,
    deadline_in,
    program_hash,
    protocol,
)
from repro.service.journal import (
    Q_BAD_LINEAGE,
    Q_MISSING_BASE,
    QUARANTINE_SLUGS,
    JournalLineage,
    Quarantined,
)

P1 = "void main() {\n  open();\n  use();\n  close();\n}\n"
P2 = "void main() {\n  open();\n  use();\n  use();\n  close();\n}\n"
P3 = "void main() {\n  open();\n  close();\n}\n"
PROP = "chroot-jail"


def make_request(op, params, id=1):
    return json.dumps({"v": 1, "id": id, "op": op, "params": params})


# ---------------------------------------------------------------------------
# record framing (repro.core.persist)
# ---------------------------------------------------------------------------


class TestJournalFraming:
    def test_round_trip(self):
        payload = {"kind": "patch", "seq": 3, "source": "x\ny", "key": None}
        line = frame_journal_record(payload).rstrip(b"\n")
        assert parse_journal_record(line) == payload

    def test_checksum_detects_payload_damage(self):
        line = bytearray(frame_journal_record({"kind": "base", "v": 1}).rstrip(b"\n"))
        line[line.index(b"{") + 2] ^= 0x04
        with pytest.raises(JournalCorrupt) as err:
            parse_journal_record(bytes(line))
        assert "checksum" in err.value.detail

    def test_size_field_detects_truncation(self):
        line = frame_journal_record({"kind": "base", "v": 1}).rstrip(b"\n")
        with pytest.raises(JournalCorrupt):
            parse_journal_record(line[:-4])

    def test_malformed_frame_rejected(self):
        with pytest.raises(JournalCorrupt):
            parse_journal_record(b"not a framed record")

    def test_read_journal_reports_torn_tail(self, tmp_path):
        path = tmp_path / "t.wal"
        good = frame_journal_record({"kind": "base", "n": 0})
        tail = frame_journal_record({"kind": "patch", "n": 1})
        path.write_bytes(JOURNAL_MAGIC.encode() + b"\n" + good + tail[:-5])
        records, damage = read_journal(path)
        assert [r["n"] for r in records] == [0]
        assert damage is not None and "torn" in damage

    def test_read_journal_interior_damage_raises(self, tmp_path):
        path = tmp_path / "t.wal"
        bad = bytearray(frame_journal_record({"kind": "base", "n": 0}))
        bad[bad.index(b"{") + 1] ^= 0x01
        tail = frame_journal_record({"kind": "patch", "n": 1})
        path.write_bytes(JOURNAL_MAGIC.encode() + b"\n" + bytes(bad) + tail)
        with pytest.raises(JournalCorrupt) as err:
            read_journal(path)
        assert not err.value.torn

    def test_read_journal_rejects_missing_magic(self, tmp_path):
        path = tmp_path / "t.wal"
        path.write_bytes(frame_journal_record({"kind": "base"}))
        with pytest.raises(JournalCorrupt):
            read_journal(path)


# ---------------------------------------------------------------------------
# SessionJournal lifecycle
# ---------------------------------------------------------------------------


class TestSessionJournal:
    def test_begin_append_load_round_trip(self, tmp_path):
        journal = SessionJournal(tmp_path)
        journal.begin("fp1", "prop", "v0", "src0")
        journal.append("fp1", "v0", "v1", "src1", "k1")
        journal.append("fp1", "v1", "v2", "src2", None)
        journal.close()
        lineage = SessionJournal(tmp_path).load("fp1")
        assert isinstance(lineage, JournalLineage)
        assert lineage.base_version == "v0"
        assert lineage.base_source == "src0"
        assert [p["version"] for p in lineage.patches] == ["v1", "v2"]
        assert lineage.patches[0]["key"] == "k1"
        assert lineage.version == "v2"

    def test_append_requires_begin(self, tmp_path):
        journal = SessionJournal(tmp_path)
        with pytest.raises(KeyError):
            journal.append("fp1", "v0", "v1", "src", None)

    def test_fsync_batching_counts(self, tmp_path):
        journal = SessionJournal(tmp_path, fsync_every=3)
        journal.begin("fp1", "prop", "v0", "s0")
        for i in range(7):
            journal.append("fp1", f"v{i}", f"v{i + 1}", "s", None)
        assert journal.fsyncs == 2  # records 3 and 6; 7th is pending
        journal.flush()
        assert journal.fsyncs == 3

    def test_load_resumes_append_chain(self, tmp_path):
        journal = SessionJournal(tmp_path)
        journal.begin("fp1", "prop", "v0", "s0")
        journal.append("fp1", "v0", "v1", "s1", None)
        journal.close()
        journal2 = SessionJournal(tmp_path)
        lineage = journal2.load("fp1")
        assert isinstance(lineage, JournalLineage)
        journal2.append("fp1", "v1", "v2", "s2", None)
        journal2.close()
        lineage = SessionJournal(tmp_path).load("fp1")
        assert [p["seq"] for p in lineage.patches] == [1, 2]

    def test_compact_rotates_and_prunes(self, tmp_path):
        from repro.incremental import StableCheck
        from repro.modelcheck import PROPERTY_FACTORIES

        check = StableCheck(P1, PROPERTY_FACTORIES[PROP]())
        journal = SessionJournal(tmp_path, compact_every=2)
        journal.begin("fp1", PROP, "v0", P3)
        count = journal.append("fp1", "v0", "v1", P2, None)
        count = journal.append("fp1", "v1", "v2", P1, None)
        assert journal.should_compact(count)
        journal.compact("fp1", PROP, "v2", P1, check.solver)
        assert journal.compactions == 1
        lineage = SessionJournal(tmp_path).load("fp1")
        assert lineage.base_version == "v2"
        assert lineage.patches == []
        assert lineage.snapshot is not None
        assert (tmp_path / lineage.snapshot).exists()

    def test_quarantine_preserves_evidence(self, tmp_path):
        journal = SessionJournal(tmp_path)
        journal.begin("fp1", "prop", "v0", "s0")
        journal.close()
        verdict = journal.quarantine("fp1", Q_BAD_LINEAGE, "because")
        assert isinstance(verdict, Quarantined)
        assert not journal.wal_path("fp1").exists()
        assert journal.quarantine_path("fp1").exists()
        assert journal.fingerprints() == []

    def test_load_quarantines_missing_base(self, tmp_path):
        path = tmp_path / "fp1.wal"
        record = frame_journal_record(
            {"kind": "patch", "seq": 1, "base": "a", "version": "b",
             "source": "s", "key": None}
        )
        path.write_bytes(JOURNAL_MAGIC.encode() + b"\n" + record)
        verdict = SessionJournal(tmp_path).load("fp1")
        assert isinstance(verdict, Quarantined)
        assert verdict.slug == Q_MISSING_BASE

    def test_load_quarantines_broken_chain(self, tmp_path):
        path = tmp_path / "fp1.wal"
        base = frame_journal_record(
            {"kind": "base", "fingerprint": "fp1", "property": "p",
             "version": "v0", "source": "s", "snapshot": None}
        )
        patch = frame_journal_record(
            {"kind": "patch", "seq": 1, "base": "WRONG", "version": "v1",
             "source": "s", "key": None}
        )
        path.write_bytes(JOURNAL_MAGIC.encode() + b"\n" + base + patch)
        verdict = SessionJournal(tmp_path).load("fp1")
        assert isinstance(verdict, Quarantined)
        assert verdict.slug == Q_BAD_LINEAGE

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            SessionJournal(tmp_path, fsync_every=0)
        with pytest.raises(ValueError):
            SessionJournal(tmp_path, compact_every=0)
        assert len(set(QUARANTINE_SLUGS)) == 6


# ---------------------------------------------------------------------------
# engine: journaling, idempotency keys, recovery counters
# ---------------------------------------------------------------------------


class TestEngineJournal:
    def test_patch_writes_ahead(self, tmp_path):
        engine = AnalysisEngine(journal_dir=tmp_path)
        r1 = engine.patch(P1, PROP)
        r2 = engine.patch(P2, PROP, base=r1["version"])
        engine.close()
        fp = r2["fingerprint"]
        lineage = SessionJournal(tmp_path).load(fp)
        assert isinstance(lineage, JournalLineage)
        assert lineage.base_version == r1["version"]
        assert lineage.base_source == P1
        assert [p["version"] for p in lineage.patches] == [r2["version"]]
        assert program_hash(lineage.patches[0]["source"]) == r2["version"]

    def test_idempotent_retry_in_memory(self, tmp_path):
        engine = AnalysisEngine(journal_dir=tmp_path)
        r1 = engine.patch(P1, PROP, key="a")
        r2 = engine.patch(P2, PROP, base=r1["version"], key="b")
        retry = engine.patch(P2, PROP, base=r1["version"], key="b")
        assert retry["replayed"] is True
        assert retry["version"] == r2["version"]
        assert retry["has_violation"] == r2["has_violation"]
        counters = engine.metrics.snapshot()["counters"]
        assert counters["patch.replayed"] == 1
        assert counters.get("patch.fallback.base-mismatch", 0) == 0
        engine.close()

    def test_idempotent_retry_without_key_degrades(self):
        engine = AnalysisEngine()
        r1 = engine.patch(P1, PROP)
        engine.patch(P2, PROP, base=r1["version"])
        retry = engine.patch(P2, PROP, base=r1["version"])
        assert retry["fallback"] == "base-mismatch"

    def test_idempotent_retry_across_restart(self, tmp_path):
        engine = AnalysisEngine(journal_dir=tmp_path)
        r1 = engine.patch(P1, PROP, key="a")
        r2 = engine.patch(P2, PROP, base=r1["version"], key="b")
        engine.close()
        engine2 = AnalysisEngine(journal_dir=tmp_path)
        assert engine2.recoveries == 1
        retry = engine2.patch(P2, PROP, base=r1["version"], key="b")
        assert retry["replayed"] is True
        assert retry["patched"] is True
        assert retry["version"] == r2["version"]
        engine2.close()

    def test_compaction_threshold(self, tmp_path):
        engine = AnalysisEngine(journal_dir=tmp_path, journal_compact_every=2)
        r = engine.patch(P1, PROP)
        for source in (P2, P3, P1, P2):
            r = engine.patch(source, PROP, base=r["version"])
        assert engine.journal.compactions == 2
        engine.close()
        engine2 = AnalysisEngine(journal_dir=tmp_path)
        assert engine2.recoveries == 1
        assert engine2._quarantined == {}
        engine2.close()

    def test_stats_reports_uptime_recoveries_journal(self, tmp_path):
        engine = AnalysisEngine(journal_dir=tmp_path)
        stats = engine.stats()
        assert stats["uptime_s"] >= 0
        assert stats["recoveries"] == 0
        assert stats["journal"] == {
            "appends": 0, "fsyncs": 0, "compactions": 0, "quarantined": 0
        }
        engine.close()

    def test_stats_without_journal_omits_section(self):
        stats = AnalysisEngine().stats()
        assert "journal" not in stats
        assert "uptime_s" in stats

    def test_checkpoint_sessions_bounds_replay(self, tmp_path):
        engine = AnalysisEngine(journal_dir=tmp_path)
        r1 = engine.patch(P1, PROP)
        engine.patch(P2, PROP, base=r1["version"])
        assert engine.checkpoint_sessions() == 1
        engine.close()
        lineage = SessionJournal(tmp_path).load(r1["fingerprint"])
        assert lineage.patches == []  # rotated: nothing left to replay
        assert lineage.base_source == P2


# ---------------------------------------------------------------------------
# deadline propagation
# ---------------------------------------------------------------------------


class TestDeadline:
    def test_engine_rejects_expired_deadline(self):
        engine = AnalysisEngine()
        with pytest.raises(EngineError) as err:
            engine.dispatch(
                "check",
                {"program": P1, "property": PROP, "deadline": time.time() - 1},
            )
        assert err.value.code == protocol.E_DEADLINE

    def test_engine_rejects_bad_deadline_type(self):
        engine = AnalysisEngine()
        with pytest.raises(EngineError) as err:
            engine.dispatch(
                "check",
                {"program": P1, "property": PROP, "deadline": True},
            )
        assert err.value.code == protocol.E_BAD_REQUEST

    def test_engine_accepts_live_deadline(self):
        engine = AnalysisEngine()
        result = engine.dispatch(
            "check",
            {"program": P1, "property": PROP, "deadline": deadline_in(30)},
        )
        assert result["property"] == PROP

    def test_server_refuses_expired_before_admission(self):
        server = AnalysisServer(workers=1)
        try:
            reply = json.loads(
                server.process_line(
                    make_request(
                        "patch",
                        {
                            "program": P1,
                            "property": PROP,
                            "deadline": time.time() - 5,
                        },
                    )
                )
            )
            assert reply["error"]["code"] == protocol.E_DEADLINE
            assert server.metrics.get("requests.deadline_exceeded") == 1
            # refused work never reached the pool or the breaker
            assert server.metrics.get("requests.inflight") == 0
        finally:
            server.close()

    def test_server_deadline_does_not_split_breaker_buckets(self):
        from repro.service.server import request_fingerprint

        params = {"program": P1, "property": PROP}
        with_deadline = dict(params, deadline=time.time() + 60)
        # the server pops the deadline before fingerprinting; the
        # fingerprints of the remaining params must coincide
        with_deadline.pop("deadline")
        assert request_fingerprint("patch", params) == request_fingerprint(
            "patch", with_deadline
        )

    def test_server_live_deadline_serves(self):
        server = AnalysisServer(workers=1)
        try:
            reply = json.loads(
                server.process_line(
                    make_request(
                        "check",
                        {
                            "program": P1,
                            "property": PROP,
                            "deadline": time.time() + 60,
                        },
                    )
                )
            )
            assert reply["ok"]
        finally:
            server.close()


# ---------------------------------------------------------------------------
# graceful drain
# ---------------------------------------------------------------------------


class TestDrain:
    def test_drain_reports_counts_and_checkpoints(self, tmp_path):
        engine = AnalysisEngine(journal_dir=tmp_path)
        server = AnalysisServer(engine, workers=2)
        reply = json.loads(
            server.process_line(
                make_request("patch", {"program": P1, "property": PROP})
            )
        )
        assert reply["ok"]
        outcome = server.drain(drain_seconds=1.0)
        assert outcome == {"drained": 0, "cancelled": 0, "checkpointed": 1}
        assert server.closing

    def test_drain_is_idempotent_with_close(self, tmp_path):
        engine = AnalysisEngine(journal_dir=tmp_path)
        server = AnalysisServer(engine, workers=1)
        server.drain(drain_seconds=0.1)
        server.close()  # second teardown must not raise
