"""Tests for the backward demand solver and solver order-independence."""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.annotations import MonoidAlgebra
from repro.core.demand import DemandBackwardSolver, DemandForwardSolver
from repro.core.solver import Solver
from repro.core.terms import Constructor, Variable, constant
from repro.dfa.gallery import one_bit_machine, privilege_machine


class TestBackwardBasics:
    def test_simple_chain(self):
        machine = privilege_machine()
        solver = DemandBackwardSolver(machine)
        a, b, c = Variable("A"), Variable("B"), Variable("C")
        solver.add(a, b, ["seteuid_zero"])
        solver.add(b, c, ["execl"])
        solution = solver.solve_to(c)
        assert solver.can_reach(solution, a)
        assert not solver.can_reach(solution, b)

    def test_through_wrap_and_unwrap(self):
        machine = privilege_machine()
        solver = DemandBackwardSolver(machine)
        o = Constructor("o", 1)
        caller, entry, exit_, after = (
            Variable(n) for n in ("C", "En", "Ex", "Af")
        )
        solver.add(caller, entry_pre := Variable("P"), ["seteuid_zero"])
        solver.add(o(entry_pre), entry)
        solver.add(entry, exit_, ["execl"])
        solver.add(o.proj(1, exit_), after)
        solution = solver.solve_to(after)
        assert solver.can_reach(solution, caller, matched_only=True)

    def test_annotation_count_bounded_by_reversed_states(self):
        machine = privilege_machine()
        solver = DemandBackwardSolver(machine)
        variables = [Variable(f"v{i}") for i in range(8)]
        symbols = sorted(machine.alphabet)
        rng = random.Random(3)
        for _ in range(30):
            a, b = rng.randrange(8), rng.randrange(8)
            solver.add(variables[a], variables[b], [rng.choice(symbols)])
        solution = solver.solve_to(variables[0])
        bound = solver.reversed_machine.n_states
        assert solution.max_states_per_variable() <= bound


def _random_instance(seed: int):
    machine = privilege_machine()
    rng = random.Random(seed)
    symbols = sorted(machine.alphabet)
    n = rng.randrange(4, 9)
    variables = [Variable(f"v{i}") for i in range(n)]
    ctor = Constructor("w", 1)
    constraints = []
    for _ in range(rng.randrange(4, 14)):
        a, b = rng.randrange(n), rng.randrange(n)
        kind = rng.random()
        if kind < 0.6:
            word = [rng.choice(symbols)] if rng.random() < 0.6 else []
            constraints.append(("plain", variables[a], variables[b], word))
        elif kind < 0.8:
            constraints.append(("wrap", variables[a], variables[b], ()))
        else:
            constraints.append(("unwrap", variables[a], variables[b], ()))
    return machine, variables, ctor, constraints


def _load(target, ctor, constraints):
    for kind, a, b, word in constraints:
        if kind == "plain":
            target.add(a, b, word)
        elif kind == "wrap":
            target.add(ctor(a), b)
        else:
            target.add(ctor.proj(1, a), b)


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=60, deadline=None)
def test_backward_agrees_with_forward_on_matched_reachability(seed):
    machine, variables, ctor, constraints = _random_instance(seed)
    forward = DemandForwardSolver(machine)
    backward = DemandBackwardSolver(machine)
    _load(forward, ctor, constraints)
    _load(backward, ctor, constraints)
    forward.add_source("c", variables[0])
    forward_solution = forward.solve("c")
    for target in variables:
        forward_hit = forward_solution.reaches(target, matched_only=True)
        backward_solution = backward.solve_to(target)
        backward_hit = backward.can_reach(
            backward_solution, variables[0], matched_only=True
        )
        assert forward_hit == backward_hit, (seed, target)


class TestOrderIndependence:
    """The solved form must not depend on constraint-insertion order
    (the resolution rules are applied 'in any order', Section 3)."""

    def _facts(self, solver: Solver):
        # The canonical (cycle-quotient) solved form: insertion order may
        # change *which* identity cycles the bounded online sampler
        # collapses, but never the solved form modulo the full quotient.
        return set(solver.canonical_facts())

    def test_permutations_of_example_24(self):
        machine = one_bit_machine()
        o = Constructor("o", 1)
        c = constant("c")
        W, X, Y, Z = (Variable(n) for n in "WXYZ")

        def build(order):
            algebra = MonoidAlgebra(machine)
            solver = Solver(algebra)
            steps = [
                lambda: solver.add(c, W, algebra.word("g")),
                lambda: solver.add(o(W), X, algebra.word("g")),
                lambda: solver.add(X, o(Y)),
                lambda: solver.add(o(Y), Z),
            ]
            for index in order:
                steps[index]()
            return self._facts(solver)

        reference = build((0, 1, 2, 3))
        for order in itertools.permutations(range(4)):
            assert build(order) == reference, order

    @given(st.integers(min_value=0, max_value=50_000), st.randoms())
    @settings(max_examples=40, deadline=None)
    def test_random_systems_order_independent(self, seed, shuffler):
        machine, variables, ctor, constraints = _random_instance(seed)
        source = constant("c")

        def build(order):
            algebra = MonoidAlgebra(machine)
            solver = Solver(algebra)
            solver.add(source, variables[0])
            for index in order:
                kind, a, b, word = constraints[index]
                if kind == "plain":
                    solver.add(a, b, algebra.word(word))
                elif kind == "wrap":
                    solver.add(ctor(a), b)
                else:
                    solver.add(ctor.proj(1, a), b)
            return self._facts(solver)

        order = list(range(len(constraints)))
        reference = build(order)
        shuffler.shuffle(order)
        assert build(order) == reference, (seed, order)
