"""Tests for the annotation algebras."""

import pytest

from repro.core.annotations import MonoidAlgebra, ProductAlgebra, UnannotatedAlgebra
from repro.dfa.gallery import one_bit_machine, privilege_machine
from repro.dfa.regex import regex_to_dfa


class TestMonoidAlgebra:
    def setup_method(self):
        self.algebra = MonoidAlgebra(privilege_machine())

    def test_identity(self):
        assert self.algebra.identity.is_identity()

    def test_symbol_and_word(self):
        acquire = self.algebra.symbol("seteuid_zero")
        execl = self.algebra.symbol("execl")
        composed = self.algebra.then(acquire, execl)
        assert composed == self.algebra.word(["seteuid_zero", "execl"])

    def test_accepting(self):
        bad = self.algebra.word(["seteuid_zero", "execl"])
        good = self.algebra.word(["seteuid_zero", "seteuid_nonzero", "execl"])
        assert self.algebra.is_accepting(bad)
        assert not self.algebra.is_accepting(good)

    def test_state_after(self):
        machine = privilege_machine()
        ann = self.algebra.word(["seteuid_zero"])
        assert self.algebra.state_after(ann) == machine.run(["seteuid_zero"])

    def test_liveness(self):
        algebra = MonoidAlgebra(regex_to_dfa("ab"))
        assert algebra.is_live(algebra.word("ab"))
        assert not algebra.is_live(algebra.word("ba"))


class TestUnannotatedAlgebra:
    def test_trivial(self):
        algebra = UnannotatedAlgebra()
        assert algebra.then(algebra.identity, algebra.identity) == algebra.identity
        assert algebra.is_live(algebra.identity)
        assert algebra.is_accepting(algebra.identity)


class TestProductAlgebra:
    def setup_method(self):
        bit = MonoidAlgebra(one_bit_machine())
        self.bit = bit
        self.algebra = ProductAlgebra([bit, bit, bit])

    def test_identity(self):
        assert self.algebra.identity == (self.bit.identity,) * 3

    def test_componentwise_composition(self):
        g, k, e = self.bit.symbol("g"), self.bit.symbol("k"), self.bit.identity
        first = (g, e, k)
        second = (k, g, e)
        assert self.algebra.then(first, second) == (k, g, k)

    def test_accepting_bits(self):
        g, k, e = self.bit.symbol("g"), self.bit.symbol("k"), self.bit.identity
        ann = (g, e, k)
        assert self.algebra.accepting_bits(ann) == (True, False, False)
        assert not self.algebra.is_accepting(ann)
        assert self.algebra.is_accepting((g, g, g))

    def test_liveness_conjunction(self):
        assert self.algebra.is_live(self.algebra.identity)

    def test_empty_product_rejected(self):
        with pytest.raises(ValueError):
            ProductAlgebra([])

    def test_matches_explicit_product_machine(self):
        """The lazy tuple representation agrees with the real product
        machine on acceptance of random words."""
        import itertools
        import random

        from repro.dfa.gallery import bit_vector_machine

        machine = bit_vector_machine(2)
        bit = MonoidAlgebra(one_bit_machine())
        product = ProductAlgebra([bit, bit])
        rng = random.Random(0)
        symbols = [("g", 0), ("k", 0), ("g", 1), ("k", 1)]
        for _ in range(50):
            word = [rng.choice(symbols) for _ in range(rng.randrange(6))]
            tuple_ann = product.identity
            for kind, index in word:
                step = tuple(
                    bit.symbol(kind) if i == index else bit.identity
                    for i in range(2)
                )
                tuple_ann = product.then(tuple_ann, step)
            bits = product.accepting_bits(tuple_ann)
            # machine accepts iff bit 0 holds at the end
            assert machine.accepts(word) == bits[0]
