"""Solver vs the word-level reference semantics (Section 2).

Random small constraint systems (variables, constructors, projections,
annotated inclusions) are solved twice: by the representative-function
solver and by the :mod:`repro.core.semantics` reference evaluator that
manipulates explicit words.  Theorem 2.1 says the two views must agree:
a constant reaches a variable with monoid element ``f`` iff it reaches
it (in the least solution) with some word in ``f``'s class — modulo
the reference evaluator's depth/word bounds, which we respect by
bounding the generated systems.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.annotations import MonoidAlgebra
from repro.core.queries import Reachability
from repro.core.semantics import ReferenceSemantics, WordConstraint
from repro.core.solver import Solver
from repro.core.terms import Constructor, Variable, constant
from repro.dfa.gallery import one_bit_machine, privilege_machine
from repro.dfa.monoid import TransitionMonoid
from repro.dfa.regex import regex_to_dfa

MACHINES = {
    "one_bit": one_bit_machine(),
    "privilege": privilege_machine(),
    "regex": regex_to_dfa("a(b|c)*d"),
}


def generate_system(machine, seed: int, n_vars: int = 5, n_constraints: int = 9):
    """An acyclic lower-bound system over constants/constructors/projs.

    Acyclicity (all flows go from lower to higher variable index, and
    wrapping only increases depth boundedly) keeps the least solution
    finite and within the reference evaluator's bounds.
    """
    rng = random.Random(seed)
    alphabet = sorted(machine.alphabet, key=repr)
    variables = [Variable(f"v{i}") for i in range(n_vars)]
    wrap = Constructor("w", 1)
    pair = Constructor("pr", 2)
    constraints: list[WordConstraint] = []
    constraints.append(WordConstraint(constant("c"), variables[0]))
    constraints.append(WordConstraint(constant("d"), variables[0]))
    for _ in range(n_constraints):
        u = rng.randrange(n_vars - 1)
        v = rng.randrange(u + 1, n_vars)
        word = tuple(
            rng.choice(alphabet) for _ in range(rng.randrange(3))
        )
        kind = rng.random()
        if kind < 0.45:
            constraints.append(WordConstraint(variables[u], variables[v], word))
        elif kind < 0.6:
            constraints.append(
                WordConstraint(wrap(variables[u]), variables[v], word)
            )
        elif kind < 0.75:
            constraints.append(
                WordConstraint(
                    wrap.proj(1, variables[u]), variables[v], word
                )
            )
        elif kind < 0.9:
            w2 = rng.randrange(v)  # keep the system acyclic
            constraints.append(
                WordConstraint(
                    pair(variables[u], variables[w2]), variables[v], word
                )
            )
        else:
            index = rng.choice((1, 2))
            constraints.append(
                WordConstraint(
                    pair.proj(index, variables[u]), variables[v], word
                )
            )
    return variables, constraints


def solve_both(machine, constraints):
    algebra = MonoidAlgebra(machine)
    solver = Solver(algebra)
    for c in constraints:
        solver.add(c.lhs, c.rhs, algebra.word(c.word))
    reference = ReferenceSemantics(
        machine, constraints, max_depth=6, max_word=12, max_iterations=60
    )
    return algebra, solver, reference


@st.composite
def cases(draw):
    name = draw(st.sampled_from(sorted(MACHINES)))
    seed = draw(st.integers(min_value=0, max_value=100_000))
    return MACHINES[name], seed


@given(cases())
@settings(max_examples=60, deadline=None)
def test_solver_agrees_with_word_semantics(case):
    machine, seed = case
    variables, constraints = generate_system(machine, seed)
    algebra, solver, reference = solve_both(machine, constraints)
    monoid = algebra.monoid
    reach = Reachability(solver, through_constructors=True)
    for var in variables:
        # word-level facts, collapsed to representative functions
        expected = set()
        for name, word in reference.constants_with_words(var):
            fn = monoid.of_word(word)
            if monoid.is_live(fn):
                expected.add((name, fn))
        actual = {
            (const.constructor.name, ann) for const, ann, _o in reach.facts(var)
        }
        assert actual == expected, f"seed={seed} var={var}"


@given(cases())
@settings(max_examples=40, deadline=None)
def test_entailment_queries_agree(case):
    machine, seed = case
    variables, constraints = generate_system(machine, seed)
    _algebra, solver, reference = solve_both(machine, constraints)
    reach = Reachability(solver, through_constructors=True)
    c = constant("c")
    for var in variables:
        assert reach.reaches(var, c) == reference.entails_constant(var, "c"), (
            f"seed={seed} var={var}"
        )


def test_reference_example_24_shape():
    """The reference evaluator reproduces Example 2.4 term structure."""
    machine = one_bit_machine()
    o = Constructor("o", 1)
    c = constant("c")
    W, X = Variable("W"), Variable("X")
    constraints = [
        WordConstraint(c, W, ("g",)),
        WordConstraint(o(W), X, ("g",)),
    ]
    reference = ReferenceSemantics(machine, constraints)
    from repro.core.semantics import is_bottom

    terms = reference.terms_of(X)
    # the partial term o^g(⊥) exists too — non-strict constructors
    assert any(is_bottom(t.children[0]) for t in terms)
    (term,) = [t for t in terms if not is_bottom(t.children[0])]
    # o^{g}(c^{gg}): the outer wrap saw g once, the constant twice.
    assert term.constructor.name == "o"
    assert term.annotation == ("g",)
    assert term.children[0].annotation == ("g", "g")
    assert machine.accepts(term.children[0].annotation)
