"""Tests for the bidirectional solver (Section 3)."""

import pytest

from repro.core.annotations import MonoidAlgebra, UnannotatedAlgebra
from repro.core.errors import ConstraintError, NoSolutionError
from repro.core.solver import Solver
from repro.core.system import AnnotatedConstraintSystem
from repro.core.terms import Constructor, Variable, constant
from repro.dfa.gallery import one_bit_machine
from repro.dfa.regex import regex_to_dfa


@pytest.fixture
def system():
    return AnnotatedConstraintSystem(one_bit_machine())


class TestExample24:
    """The paper's worked Example 2.4 over M_1bit."""

    def setup_method(self):
        self.sys = AnnotatedConstraintSystem(one_bit_machine())
        self.c = self.sys.constant("c")
        self.o = self.sys.constructor("o", 1)
        self.W, self.X, self.Y, self.Z = (self.sys.var(n) for n in "WXYZ")
        self.sys.add(self.c, self.W, "g")
        self.sys.add(self.o(self.W), self.X, "g")
        self.sys.add(self.X, self.o(self.Y))
        self.sys.add(self.o(self.Y), self.Z)

    def test_decomposition_derives_component_edge(self):
        # o^β(W) ⊆^{f_g} o^γ(Y) decomposes to W ⊆^{f_g} Y.
        f_g = self.sys.algebra.symbol("g")
        assert (self.Y, f_g) in set(self.sys.solver.edges_from(self.W))

    def test_transitive_closure_with_idempotence(self):
        # c ⊆^{f_g} W ⊆^{f_g} Y gives c ⊆^{f_g} Y since f_g ∘ f_g = f_g.
        f_g = self.sys.algebra.symbol("g")
        assert self.sys.solver.has_lower(self.Y, self.c, f_g)

    def test_entailment_query(self):
        # The query of Section 3.2: o^β(c^α) ⊆^{f_g} Z holds.
        assert self.sys.reaches(self.Z, self.c)

    def test_solved_form_is_consistent(self):
        assert self.sys.is_consistent


class TestResolutionRules:
    def test_constructor_mismatch_inconsistent(self):
        solver = Solver()
        c, d = constant("c"), constant("d")
        x = Variable("X")
        solver.add(c, x)
        solver.add(x, d)
        assert not solver.is_consistent
        with pytest.raises(NoSolutionError):
            solver.check()

    def test_matching_constants_consistent(self):
        solver = Solver()
        c = constant("c")
        x = Variable("X")
        solver.add(c, x)
        solver.add(x, c)
        assert solver.is_consistent

    def test_arity_distinguishes_constructors(self):
        solver = Solver()
        f1 = Constructor("f", 1)
        f2 = Constructor("f", 2)
        x, a, b = Variable("X"), Variable("A"), Variable("B")
        solver.add(f1(a), x)
        solver.add(x, f2(a, b))
        assert not solver.is_consistent

    def test_projection_rule(self):
        solver = Solver()
        pair = Constructor("pair", 2)
        a, b, y, z = (Variable(n) for n in "ABYZ")
        solver.add(pair(a, b), y)
        solver.add(pair.proj(2, y), z)
        # X_i ⊆ Z derived: anything in B is in Z.
        c = constant("c")
        solver.add(c, b)
        assert solver.has_lower(z, c, solver.algebra.identity)

    def test_projection_added_after_source(self):
        # Online solving: order of constraints must not matter.
        solver = Solver()
        pair = Constructor("pair", 2)
        a, b, y, z = (Variable(n) for n in "ABYZ")
        c = constant("c")
        solver.add(c, a)
        solver.add(pair(a, b), y)
        solver.add(pair.proj(1, y), z)
        assert solver.has_lower(z, c, solver.algebra.identity)

    def test_no_projection_on_rhs(self):
        solver = Solver()
        pair = Constructor("pair", 2)
        with pytest.raises(ConstraintError):
            solver.add(Variable("X"), pair.proj(1, Variable("Y")))

    def test_projection_into_constructed_rhs(self):
        # c^{-i}(Y) ⊆ d(...) is legal; a bridge variable is introduced.
        solver = Solver()
        box = Constructor("box", 1)
        wrap = Constructor("wrap", 1)
        y, a = Variable("Y"), Variable("A")
        solver.add(box.proj(1, y), wrap(a))
        assert solver.is_consistent

    def test_nested_argument_normalization(self):
        solver = Solver()
        box = Constructor("box", 1)
        x = Variable("X")
        c = constant("c")
        # box(box(c)) ⊆ X — inner expression normalized via fresh vars.
        solver.add(box(box(c)), x)
        sources = [src for src, _ann in solver.lower_bounds(x)]
        assert len(sources) == 1
        assert sources[0].constructor == box


class TestAnnotationPropagation:
    def test_liveness_pruning_drops_dead_paths(self):
        algebra = MonoidAlgebra(regex_to_dfa("ab"))
        solver = Solver(algebra)
        c = constant("c")
        x, y, z = Variable("X"), Variable("Y"), Variable("Z")
        solver.add(c, x)
        solver.add(x, y, algebra.word("b"))  # 'b' first: dead
        solver.add(y, z, algebra.word("a"))
        assert not list(solver.lower_bounds(z))
        assert list(solver.lower_bounds(x))

    def test_annotation_composition_along_path(self):
        algebra = MonoidAlgebra(regex_to_dfa("ab"))
        solver = Solver(algebra)
        c = constant("c")
        x, y, z = Variable("X"), Variable("Y"), Variable("Z")
        solver.add(c, x)
        solver.add(x, y, algebra.word("a"))
        solver.add(y, z, algebra.word("b"))
        assert solver.has_lower(z, c, algebra.word("ab"))

    def test_multiple_annotations_per_edge_pair(self):
        sys_ = AnnotatedConstraintSystem(one_bit_machine())
        c = sys_.constant("c")
        x, y = sys_.var("X"), sys_.var("Y")
        sys_.add(c, x)
        sys_.add(x, y, "g")
        sys_.add(x, y, "k")
        annotations = {
            ann for src, ann in sys_.solver.lower_bounds(y) if src == c
        }
        assert annotations == {sys_.algebra.symbol("g"), sys_.algebra.symbol("k")}


class TestTermination:
    def test_cyclic_constraints_terminate(self):
        sys_ = AnnotatedConstraintSystem(one_bit_machine())
        c = sys_.constant("c")
        x, y = sys_.var("X"), sys_.var("Y")
        sys_.add(c, x, "g")
        sys_.add(x, y, "g")
        sys_.add(y, x, "k")  # cycle with annotations
        assert sys_.solver.is_consistent
        # Lemma 3.1: the fact count is bounded.
        assert sys_.solver.fact_count() < 50

    def test_recursive_constructor_cycle(self):
        solver = Solver()
        box = Constructor("box", 1)
        x = Variable("X")
        solver.add(box(x), x)  # X ⊇ box(X): infinite terms, finite facts
        solver.add(box.proj(1, x), x)
        assert solver.is_consistent


class TestBookkeeping:
    def test_fact_count_and_processed(self):
        solver = Solver()
        c = constant("c")
        x, y = Variable("X"), Variable("Y")
        solver.add(c, x)
        solver.add(x, y)
        assert solver.fact_count() >= 3
        assert solver.facts_processed >= 3

    def test_variables_enumeration(self):
        solver = Solver()
        x, y = Variable("X"), Variable("Y")
        solver.add(x, y)
        assert {x, y} <= solver.variables()

    def test_reason_recorded(self):
        solver = Solver()
        c = constant("c")
        x = Variable("X")
        solver.add(c, x, info="origin")
        reason = solver.reason(("lower", x, c, solver.algebra.identity))
        assert reason is not None
        assert reason.rule == "given"
        assert reason.info == "origin"

    def test_duplicate_constraint_is_noop(self):
        solver = Solver()
        c = constant("c")
        x = Variable("X")
        solver.add(c, x)
        count = solver.fact_count()
        solver.add(c, x)
        assert solver.fact_count() == count


class TestSolverStats:
    """The zero-overhead counters surfaced by the analysis service."""

    def snapshot(self, solver):
        return dict(solver.stats.as_dict())

    def assert_monotone(self, before, after):
        for name, value in before.items():
            assert after[name] >= value, f"{name} decreased: {before} -> {after}"

    def test_counts_edges_and_compositions(self):
        algebra = MonoidAlgebra(one_bit_machine())
        solver = Solver(algebra)
        c = constant("c")
        x, y, z = Variable("X"), Variable("Y"), Variable("Z")
        solver.add(c, x, algebra.word("g"))
        assert solver.stats.lowers_added == 1
        solver.add(x, y)
        solver.add(y, z, algebra.word("g"))
        assert solver.stats.edges_added == 2
        # c crossed X->Y and Y->Z: at least two transitive compositions
        assert solver.stats.compositions >= 2

    def test_monotone_under_solving(self):
        algebra = MonoidAlgebra(one_bit_machine())
        solver = Solver(algebra)
        variables = [Variable(f"v{i}") for i in range(5)]
        solver.add(constant("c"), variables[0], algebra.word("g"))
        previous = self.snapshot(solver)
        for i in range(4):
            solver.add(variables[i], variables[i + 1], algebra.word("k"))
            current = self.snapshot(solver)
            self.assert_monotone(previous, current)
            previous = current

    def test_monotone_across_rollback(self):
        # rollback removes facts but never decrements a counter
        solver = Solver(MonoidAlgebra(one_bit_machine()))
        solver.add(constant("c"), Variable("X"))
        solver.mark()
        solver.add(Variable("X"), Variable("Y"))
        before = self.snapshot(solver)
        solver.rollback()
        after = self.snapshot(solver)
        self.assert_monotone(before, after)
        assert after["rollbacks"] == before["rollbacks"] + 1
        assert after["marks"] == 1

    def test_as_dict_keys(self):
        stats = Solver().stats.as_dict()
        assert set(stats) == {
            "edges_added",
            "lowers_added",
            "uppers_added",
            "projections_added",
            "compositions",
            "compositions_saved",
            "redundant_compositions",
            "facts_deduped",
            "marks",
            "rollbacks",
            "cycles_collapsed",
            "vars_merged",
            "find_calls",
            "facts_retracted",
            "facts_rederived",
            "cone_size",
        }
