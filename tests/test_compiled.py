"""The §8 specializer: compiled algebras agree with object mode everywhere.

The compiled pipeline (machine → transition monoid → composition table →
int-indexed algebra) is a pure representation change; every test here
pins that claim from a different angle:

* table-vs-object agreement of ``then``/predicates on all element pairs
  for the gallery machines, and on random words (hypothesis);
* identical solved forms and verdicts between compiled and object
  solvers on the Table 1 and Fig 11 workloads (decode-based comparison);
* packed-int gen/kill composition equals the tuple ``ProductAlgebra``;
* provenance opt-out (``record_reasons=False``) changes no facts;
* ``add_many`` batches equal one-at-a-time adds; duplicates surface in
  ``SolverStats.facts_deduped``;
* compiled solved forms persist and warm-start (format v2, including
  online adds on top of a loaded snapshot).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import build_cfg
from repro.core import (
    CompiledGenKillAlgebra,
    CompiledMonoidAlgebra,
    MonoidAlgebra,
    ProductAlgebra,
    Solver,
    compile_algebra,
)
from repro.core.persist import dump_solver, load_solver
from repro.core.terms import Constructor, Variable
from repro.dataflow import AnnotatedBitVectorAnalysis
from repro.dataflow.problems import call_tracking_problem
from repro.dfa.automaton import DFA
from repro.dfa.gallery import (
    bit_vector_machine,
    file_state_machine,
    full_privilege_machine,
    one_bit_machine,
    privilege_machine,
)
from repro.flow import FlowAnalysis
from repro.modelcheck import (
    AnnotatedChecker,
    full_privilege_property,
    simple_privilege_property,
)
from repro.synth import PackageSpec, generate_package
from tests.test_cross_validation import random_program

GALLERY = {
    "one_bit": one_bit_machine,
    "two_bit": lambda: bit_vector_machine(2),
    "privilege": privilege_machine,
    "full_privilege": full_privilege_machine,
    "file_state": file_state_machine,
}


# -- algebra-level agreement --------------------------------------------------


@pytest.mark.parametrize("name", sorted(GALLERY))
def test_compiled_then_matches_object_on_all_pairs(name):
    machine = GALLERY[name]()
    compiled = compile_algebra(machine)
    for i, fi in enumerate(compiled.elements):
        for j, fj in enumerate(compiled.elements):
            expected = compiled.encode(fi.then(fj))
            assert compiled.then(i, j) == expected, (name, fi, fj)


@pytest.mark.parametrize("name", sorted(GALLERY))
def test_compiled_predicates_match_object(name):
    machine = GALLERY[name]()
    obj = MonoidAlgebra(machine)
    compiled = CompiledMonoidAlgebra(machine)
    assert compiled.decode(compiled.identity) == obj.identity
    for i, fn in enumerate(compiled.elements):
        assert compiled.is_live(i) == obj.is_live(fn)
        assert compiled.is_accepting(i) == obj.is_accepting(fn)
        assert compiled.state_after(i) == fn(machine.start)
        assert compiled.encode(compiled.decode(i)) == i


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_compiled_word_matches_object_word(data):
    name = data.draw(st.sampled_from(sorted(GALLERY)))
    machine = GALLERY[name]()
    symbols = sorted(machine.alphabet, key=repr)
    word = data.draw(st.lists(st.sampled_from(symbols), max_size=12))
    obj = MonoidAlgebra(machine)
    compiled = CompiledMonoidAlgebra(machine)
    assert compiled.decode(compiled.word(word)) == obj.word(word)


# -- gen/kill packing ---------------------------------------------------------


@given(st.data())
@settings(max_examples=80, deadline=None)
def test_packed_genkill_matches_product_algebra(data):
    n_bits = data.draw(st.integers(min_value=1, max_value=6))
    product = ProductAlgebra([MonoidAlgebra(one_bit_machine())] * n_bits)
    packed = CompiledGenKillAlgebra(n_bits)
    elements = st.sampled_from(
        [product.components[0].identity]
        + [product.components[0].symbol(s) for s in ("g", "k")]
    )
    first = tuple(data.draw(elements) for _ in range(n_bits))
    second = tuple(data.draw(elements) for _ in range(n_bits))
    f, g = packed.encode(first), packed.encode(second)
    assert packed.decode(f) == first
    assert packed.decode(packed.then(f, g)) == product.then(first, second)
    assert packed.accepting_bits(f) == product.accepting_bits(first)
    assert packed.is_accepting(f) == product.is_accepting(first)
    assert packed.is_live(f) == product.is_live(first)


def test_of_effect_matches_encode():
    packed = CompiledGenKillAlgebra(4)
    bit = packed.bit
    gen, kill, eps = bit.symbol("g"), bit.symbol("k"), bit.identity
    assert packed.of_effect({0, 2}, {3}) == packed.encode((gen, eps, gen, kill))
    assert packed.of_effect((), ()) == packed.identity


def test_product_algebra_any_dead_all_live_semantics():
    """A product annotation is live iff every component is live."""
    # Machine with a dead element: 'a' enters a trap state that cannot
    # reach the accepting start state again.
    trap = DFA(
        n_states=2,
        alphabet=frozenset({"a"}),
        start=0,
        accepting=frozenset({0}),
        delta={(0, "a"): 1, (1, "a"): 1},
    )
    trap_algebra = MonoidAlgebra(trap)
    bit_algebra = MonoidAlgebra(one_bit_machine())
    dead = trap_algebra.symbol("a")
    assert not trap_algebra.is_live(dead)
    product = ProductAlgebra([trap_algebra, bit_algebra])
    live_pair = (trap_algebra.identity, bit_algebra.symbol("g"))
    assert product.is_live(live_pair)  # all live -> live
    assert not product.is_live((dead, bit_algebra.identity))  # any dead -> dead
    assert not product.is_live((dead, bit_algebra.symbol("k")))


# -- solver-level equivalence -------------------------------------------------


def _solved_form(solver):
    """Normalized, representation-independent view of a solved system."""
    algebra = solver.algebra
    decode = (
        algebra.decode
        if isinstance(algebra, CompiledMonoidAlgebra)
        else (lambda ann: ann)
    )
    facts = set()
    for var in solver.variables():
        for src, ann in solver.lower_bounds(var):
            facts.add(("lower", var.name, src, decode(ann)))
        for snk, ann in solver.upper_bounds(var):
            facts.add(("upper", var.name, snk, decode(ann)))
        for dst, ann in solver.edges_from(var):
            facts.add(("edge", var.name, dst.name, decode(ann)))
        for ctor, index, target, ann in solver.projection_sinks(var):
            facts.add(("proj", var.name, ctor, index, target.name, decode(ann)))
    return facts


@pytest.fixture(scope="module")
def table1_cfg():
    source = generate_package(
        PackageSpec("compiled-xval", 2_000, 25, seed=11, violation=True)
    )
    return build_cfg(source)


def test_compiled_checker_matches_object_on_table1_workload(table1_cfg):
    prop = full_privilege_property()
    obj = AnnotatedChecker(table1_cfg, prop, compiled=False)
    comp = AnnotatedChecker(table1_cfg, prop, compiled=True)
    obj_result, comp_result = obj.check(), comp.check()
    assert obj_result.has_violation == comp_result.has_violation
    assert obj_result.violation_lines() == comp_result.violation_lines()
    assert obj.solver.fact_count() == comp.solver.fact_count()
    assert _solved_form(obj.solver) == _solved_form(comp.solver)


def test_compiled_flow_matches_object_on_fig11():
    fig11 = """
    pair(y : int) : b = (1@A, y@Y)@P;
    main() : int = (pair^i(2@B)).2@V;
    """
    obj = FlowAnalysis(fig11, compiled=False)
    comp = FlowAnalysis(fig11, compiled=True)
    assert isinstance(comp.system.algebra, CompiledMonoidAlgebra)
    assert obj.flow_pairs() == comp.flow_pairs()
    assert comp.flows("B", "V") and not comp.flows("A", "V")
    assert (
        obj.system.solver.fact_count() == comp.system.solver.fact_count()
    )


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=20, deadline=None)
def test_compiled_checker_agrees_on_random_programs(seed):
    cfg = build_cfg(random_program(seed))
    prop = simple_privilege_property()
    obj = AnnotatedChecker(cfg, prop)
    comp = AnnotatedChecker(cfg, prop, compiled=True, record_reasons=False)
    assert obj.check().has_violation == comp.check().has_violation
    assert obj.solver.fact_count() == comp.solver.fact_count()
    assert _solved_form(obj.solver) == _solved_form(comp.solver)


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=15, deadline=None)
def test_compiled_dataflow_agrees_on_random_programs(seed):
    cfg = build_cfg(random_program(seed))
    problem = call_tracking_problem(cfg, ["seteuid", "execl", "work"])
    tuples = AnnotatedBitVectorAnalysis(cfg, problem).solution()
    packed = AnnotatedBitVectorAnalysis(cfg, problem, compiled=True).solution()
    assert tuples == packed, f"seed {seed}"


# -- provenance opt-out -------------------------------------------------------


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=20, deadline=None)
def test_record_reasons_off_changes_no_facts(seed):
    cfg = build_cfg(random_program(seed))
    prop = simple_privilege_property()
    with_reasons = AnnotatedChecker(cfg, prop, record_reasons=True)
    without = AnnotatedChecker(cfg, prop, record_reasons=False)
    assert (
        with_reasons.check().has_violation == without.check().has_violation
    ), f"seed {seed}"
    assert with_reasons.solver.fact_count() == without.solver.fact_count()
    assert not without.solver._reasons


# -- batching and dedup stats -------------------------------------------------


def test_add_many_equals_sequential_adds():
    machine = privilege_machine()
    x, y, z = Variable("X"), Variable("Y"), Variable("Z")
    c = Constructor("c", 0)()
    algebra = CompiledMonoidAlgebra(machine)
    constraints = [
        (c, x),
        (x, y, algebra.symbol("seteuid_zero")),
        (y, z, algebra.symbol("execl")),
    ]
    batched = Solver(CompiledMonoidAlgebra(machine))
    batched.add_many(constraints)
    sequential = Solver(CompiledMonoidAlgebra(machine))
    for lhs, rhs, *rest in constraints:
        sequential.add(lhs, rhs, rest[0] if rest else None)
    assert batched.fact_count() == sequential.fact_count()
    assert _solved_form(batched) == _solved_form(sequential)


def test_facts_deduped_counts_duplicates():
    solver = Solver(CompiledMonoidAlgebra(one_bit_machine()))
    x, y = Variable("X"), Variable("Y")
    c = Constructor("c", 0)()
    solver.add(c, x)
    solver.add(x, y)
    assert solver.stats.facts_deduped == 0
    solver.add(x, y)  # exact duplicate constraint
    assert solver.stats.facts_deduped > 0
    assert "facts_deduped" in solver.stats.as_dict()


# -- persistence --------------------------------------------------------------


def _small_compiled_solver() -> Solver:
    algebra = CompiledMonoidAlgebra(one_bit_machine())
    solver = Solver(algebra)
    x, y = Variable("X"), Variable("Y")
    solver.add(Constructor("c", 0)(), x)
    solver.add(x, y, algebra.symbol("g"))
    return solver


def test_compiled_solver_roundtrips_through_persist():
    solver = _small_compiled_solver()
    loaded = load_solver(dump_solver(solver))
    assert isinstance(loaded.algebra, CompiledMonoidAlgebra)
    assert loaded.fact_count() == solver.fact_count()
    assert _solved_form(loaded) == _solved_form(solver)


def test_loaded_solver_resumes_online_solving():
    """Seq lists must be rebuilt on load or new adds miss old facts."""
    solver = _small_compiled_solver()
    loaded = load_solver(dump_solver(solver))
    z = Variable("Z")
    loaded.add(Variable("Y"), z, loaded.algebra.symbol("k"))
    # The loaded lower bound on X must propagate through the old Y edge
    # and the new Z edge: c reaches Z annotated g·k.
    expected = loaded.algebra.word(["g", "k"])
    assert any(
        ann == expected and src.constructor.name == "c"
        for src, ann in loaded.lower_bounds(z)
    )


def test_v1_dumps_still_load():
    """Version-1 snapshots (inline annotations, no algebra tag) load."""
    algebra = MonoidAlgebra(one_bit_machine())
    solver = Solver(algebra)
    x, y = Variable("X"), Variable("Y")
    solver.add(Constructor("c", 0)(), x)
    solver.add(x, y, algebra.symbol("g"))
    data = json.loads(dump_solver(solver))
    # Rewrite the v2 dump as its v1 equivalent: inline annotations.
    elements = data.pop("elements")
    data["version"] = 1
    del data["algebra"]
    for kind in ("lowers", "uppers", "edges", "projections"):
        for fact in data[kind]:
            fact[-1] = elements[fact[-1]]
    loaded = load_solver(json.dumps(data))
    assert isinstance(loaded.algebra, MonoidAlgebra)
    assert loaded.fact_count() == solver.fact_count()
    assert _solved_form(loaded) == _solved_form(solver)
