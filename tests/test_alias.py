"""Tests for stack-aware alias queries (Section 7.5)."""

from repro.flow import StackAwareAliasAnalysis


class TestPaperExample:
    """The foo(&a,&b); foo(&b,&a) program from Section 7.5."""

    def setup_method(self):
        self.analysis = StackAwareAliasAnalysis()
        self.analysis.call_addresses(1, {"x": "a", "y": "b"})
        self.analysis.call_addresses(2, {"x": "b", "y": "a"})

    def test_naive_reports_may_alias(self):
        assert self.analysis.flat_points_to("x") == {"a", "b"}
        assert self.analysis.flat_points_to("y") == {"a", "b"}
        assert self.analysis.may_alias_naive("x", "y")

    def test_stack_aware_disambiguates(self):
        assert not self.analysis.may_alias("x", "y")

    def test_terms_encode_contexts(self):
        erased = {t.erase() for t in self.analysis.terms("x")}
        assert ("o1", (("loc_a", ()),)) in erased
        assert ("o2", (("loc_b", ()),)) in erased


class TestActualAliasing:
    def test_same_location_same_context(self):
        analysis = StackAwareAliasAnalysis()
        analysis.call_addresses(1, {"x": "a", "y": "a"})
        assert analysis.may_alias("x", "y")
        assert analysis.may_alias_naive("x", "y")

    def test_direct_assignment(self):
        analysis = StackAwareAliasAnalysis()
        analysis.points_to("p", "heap")
        analysis.copy("p", "q")
        assert analysis.may_alias("p", "q")

    def test_copies_preserve_contexts(self):
        analysis = StackAwareAliasAnalysis()
        analysis.call_addresses(1, {"x": "a"})
        analysis.copy("x", "z")
        assert analysis.may_alias("x", "z")
        analysis.call_addresses(2, {"w": "a"})
        # same location, different call contexts: stack-aware says no.
        assert not analysis.may_alias("x", "w")
        assert analysis.may_alias_naive("x", "w")

    def test_wrapped_allocation_disambiguated(self):
        # The malloc-wrapper motivation: one syntactic allocation site
        # used from two calls stays distinguishable through the stack.
        analysis = StackAwareAliasAnalysis()
        analysis.points_to("wrapper_ret", "heap_obj")
        analysis.call(1, {"p": "wrapper_ret"})
        analysis.call(2, {"q": "wrapper_ret"})
        assert not analysis.may_alias("p", "q")
        assert analysis.may_alias_naive("p", "q")

    def test_no_points_to_no_alias(self):
        analysis = StackAwareAliasAnalysis()
        analysis.points_to("p", "a")
        assert not analysis.may_alias("p", "fresh")
        assert analysis.flat_points_to("fresh") == set()
