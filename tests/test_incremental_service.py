"""Tests for the service's ``patch`` request (differential re-check).

Covers the engine's hot-session lifecycle (cold-start, patched,
base-mismatch, patch-failed), the wire protocol plumbing, the TCP
client method, and the mid-patch crash fault proving the cold-solve
fallback leaves no wrong answers behind.
"""

import pytest

from repro.modelcheck.properties import simple_privilege_property
from repro.incremental import StableCheck
from repro.service import (
    AnalysisEngine,
    AnalysisServer,
    EngineError,
    ServiceClient,
)
from repro.service import protocol
from repro.synth import PackageSpec, edit_stream
from repro.testing.faults import FaultError, FaultInjector

SPEC = PackageSpec("svc-inc", 420, 8, seed=13)


@pytest.fixture(scope="module")
def steps():
    return list(edit_stream(SPEC, 3))


def cold_verdict(source):
    return StableCheck(source, simple_privilege_property()).has_violation()


class TestEnginePatch:
    def test_first_request_cold_starts(self, steps):
        engine = AnalysisEngine()
        result = engine.patch(steps[0].source, "simple-privilege")
        assert result["patched"] is False
        assert result["fallback"] == "cold-start"
        assert result["base"] is None
        assert result["patch"] is None
        assert result["has_violation"] == cold_verdict(steps[0].source)

    def test_second_request_patches(self, steps):
        engine = AnalysisEngine()
        r0 = engine.patch(steps[0].source, "simple-privilege")
        r1 = engine.patch(
            steps[1].source, "simple-privilege", base=r0["version"]
        )
        assert r1["patched"] is True
        assert r1["fallback"] is None
        assert r1["base"] == r0["version"]
        assert r1["patch"]["retracted_constraints"] >= 0
        assert r1["has_violation"] == cold_verdict(steps[1].source)
        counters = engine.metrics.snapshot()["counters"]
        assert counters["patch.applied"] == 1
        assert counters["patch.fallback.cold-start"] == 1

    def test_base_mismatch_falls_back_cold(self, steps):
        engine = AnalysisEngine()
        engine.patch(steps[0].source, "simple-privilege")
        result = engine.patch(
            steps[1].source, "simple-privilege", base="not-the-version"
        )
        assert result["patched"] is False
        assert result["fallback"] == "base-mismatch"
        assert result["has_violation"] == cold_verdict(steps[1].source)
        # the rebuilt session is hot again
        follow = engine.patch(
            steps[2].source, "simple-privilege", base=result["version"]
        )
        assert follow["patched"] is True

    def test_no_base_patches_from_whatever_is_hot(self, steps):
        engine = AnalysisEngine()
        engine.patch(steps[0].source, "simple-privilege")
        result = engine.patch(steps[2].source, "simple-privilege")
        assert result["patched"] is True

    def test_same_program_is_empty_patch(self, steps):
        engine = AnalysisEngine()
        r0 = engine.patch(steps[0].source, "simple-privilege")
        r1 = engine.patch(
            steps[0].source, "simple-privilege", base=r0["version"]
        )
        assert r1["patched"] is True
        assert r1["patch"]["added_constraints"] == 0
        assert r1["patch"]["retracted_constraints"] == 0

    def test_parse_error_leaves_session_intact(self, steps):
        engine = AnalysisEngine()
        r0 = engine.patch(steps[0].source, "simple-privilege")
        with pytest.raises(EngineError) as excinfo:
            engine.patch("void broken( {", "simple-privilege")
        assert excinfo.value.code == protocol.E_PARSE
        r1 = engine.patch(
            steps[1].source, "simple-privilege", base=r0["version"]
        )
        assert r1["patched"] is True

    def test_parametric_property_unsupported(self, steps):
        engine = AnalysisEngine()
        with pytest.raises(EngineError) as excinfo:
            engine.patch(steps[0].source, "file-state")
        assert excinfo.value.code == protocol.E_UNSUPPORTED

    def test_unknown_property(self, steps):
        engine = AnalysisEngine()
        with pytest.raises(EngineError) as excinfo:
            engine.patch(steps[0].source, "no-such-property")
        assert excinfo.value.code == protocol.E_UNSUPPORTED

    def test_bad_base_type_rejected(self, steps):
        engine = AnalysisEngine()
        with pytest.raises(EngineError) as excinfo:
            engine.dispatch(
                "patch",
                {
                    "program": steps[0].source,
                    "property": "simple-privilege",
                    "base": 7,
                },
            )
        assert excinfo.value.code == protocol.E_BAD_REQUEST

    def test_stats_expose_patch_sessions_and_counters(self, steps):
        engine = AnalysisEngine()
        r0 = engine.patch(steps[0].source, "simple-privilege")
        engine.patch(steps[1].source, "simple-privilege", base=r0["version"])
        stats = engine.stats()
        assert stats["cache"]["patch_sessions"] == 1
        solver_stats = stats["solver"]
        assert solver_stats["facts_retracted"] > 0
        assert solver_stats["facts_rederived"] >= 0
        assert solver_stats["cone_size"] >= solver_stats["facts_retracted"]


class TestMidPatchCrash:
    """The fault-injection seam: a crash between over-deletion and
    re-derivation must never leak a half-repaired solved form."""

    def test_crash_surfaces_to_raw_callers(self, steps):
        check = StableCheck(steps[0].source, simple_privilege_property())
        injector = FaultInjector(seed=3)
        with injector.crash_during_patch():
            with pytest.raises(FaultError):
                check.apply_source(steps[1].source)

    def test_engine_falls_back_cold_and_recovers(self, steps):
        engine = AnalysisEngine()
        r0 = engine.patch(steps[0].source, "simple-privilege")
        injector = FaultInjector(seed=3)
        with injector.crash_during_patch():
            crashed = engine.patch(
                steps[1].source, "simple-privilege", base=r0["version"]
            )
        assert crashed["patched"] is False
        assert crashed["fallback"] == "patch-failed"
        # the fallback answer is the cold answer, not the torn state
        cold = StableCheck(steps[1].source, simple_privilege_property())
        assert crashed["has_violation"] == cold.has_violation()
        assert crashed["facts"] == cold.solver.fact_count()
        counters = engine.metrics.snapshot()["counters"]
        assert counters["patch.fallback.patch-failed"] == 1
        # and the rebuilt session patches normally afterwards
        follow = engine.patch(
            steps[2].source, "simple-privilege", base=crashed["version"]
        )
        assert follow["patched"] is True


class TestPatchOverTcp:
    def test_client_patch_chain(self, steps):
        with AnalysisServer(AnalysisEngine(), workers=2) as server:
            host, port = server.start_tcp()
            with ServiceClient(host, port) as client:
                r0 = client.patch(steps[0].source, "simple-privilege")
                assert r0["fallback"] == "cold-start"
                r1 = client.patch(
                    steps[1].source, "simple-privilege", base=r0["version"]
                )
                assert r1["patched"] is True
                stats = client.stats()
                assert stats["counters"]["patch.applied"] == 1

    def test_protocol_requires_program_and_property(self):
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.decode_request(
                '{"v": 1, "id": 1, "op": "patch", "params": {"program": "x"}}'
            )
        assert excinfo.value.code == protocol.E_BAD_REQUEST
