"""Tests for the forward/backward solvers (Section 5).

The key agreement property: on pure annotated reachability instances,
the forward solver, the backward solver, and the bidirectional solver
must agree on "does a source reach a sink along a word of L(M)?" —
while the *number of derived annotations* differs exactly as the paper
predicts (|S| or reversed-|S| versus |F_M^≡|).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.annotations import MonoidAlgebra
from repro.core.solver import Solver
from repro.core.terms import Variable, constant
from repro.core.unidirectional import AnnotatedGraph, BackwardSolver, ForwardSolver
from repro.dfa.gallery import adversarial_machine, one_bit_machine, privilege_machine
from repro.dfa.regex import regex_to_dfa
from repro.synth.workloads import random_annotated_graph

MACHINES = {
    "one_bit": one_bit_machine(),
    "privilege": privilege_machine(),
    "regex": regex_to_dfa("a(b|c)*d"),
}


def bidirectional_accepting(machine, workload):
    """Ground truth via the bidirectional solver: which nodes are
    reached from a source along a word of L(M)?"""
    algebra = MonoidAlgebra(machine)
    solver = Solver(algebra)
    variables = [Variable(f"v{i}") for i in range(workload.n_vars)]
    marker = constant("src")
    for index in workload.sources:
        solver.add(marker, variables[index])
    for u, v, word in workload.edges:
        solver.add(variables[u], variables[v], algebra.word(word))
    reached = set()
    for i, var in enumerate(variables):
        for src, ann in solver.lower_bounds(var):
            if src == marker and algebra.is_accepting(ann):
                reached.add(i)
                break
    return reached


class TestForwardSolver:
    def test_simple_chain(self):
        machine = privilege_machine()
        graph = AnnotatedGraph(machine)
        graph.add_edge("a", "b", ["seteuid_zero"])
        graph.add_edge("b", "c", ["execl"])
        solver = ForwardSolver(graph)
        solver.solve(["a"])
        assert solver.reachable_accepting("c")
        assert not solver.reachable_accepting("b")

    def test_dead_prefix_pruned(self):
        machine = regex_to_dfa("ab")
        graph = AnnotatedGraph(machine)
        graph.add_edge("a", "b", ["b"])  # 'b' first is a dead prefix
        solver = ForwardSolver(graph)
        solver.solve(["a"])
        assert not solver.states_of("b")

    def test_derived_annotations_bounded_by_states(self):
        machine = adversarial_machine(4)
        workload = random_annotated_graph(machine, 12, 60, seed=5)
        graph = AnnotatedGraph(machine)
        for u, v, word in workload.edges:
            graph.add_edge(u, v, word)
        solver = ForwardSolver(graph)
        solver.solve(workload.sources)
        for node, states in solver.states.items():
            assert len(states) <= machine.n_states

    def test_alphabet_check(self):
        graph = AnnotatedGraph(one_bit_machine())
        import pytest

        with pytest.raises(ValueError):
            graph.add_edge("a", "b", ["nope"])


class TestBackwardSolver:
    def test_simple_chain(self):
        machine = privilege_machine()
        graph = AnnotatedGraph(machine)
        graph.add_edge("a", "b", ["seteuid_zero"])
        graph.add_edge("b", "c", ["execl"])
        solver = BackwardSolver(graph)
        solver.solve(["c"])
        assert solver.reaches_accepting("a")
        assert not solver.reaches_accepting("b")

    def test_classes_are_state_sets(self):
        machine = one_bit_machine()
        graph = AnnotatedGraph(machine)
        graph.add_edge("a", "b", ["g"])
        solver = BackwardSolver(graph)
        solver.solve(["b"])
        for classes in solver.classes.values():
            for cls in classes:
                assert cls <= frozenset(range(machine.n_states))


@st.composite
def workload_cases(draw):
    name = draw(st.sampled_from(sorted(MACHINES)))
    machine = MACHINES[name]
    n_vars = draw(st.integers(min_value=2, max_value=8))
    n_edges = draw(st.integers(min_value=1, max_value=16))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    workload = random_annotated_graph(machine, n_vars, n_edges, seed=seed)
    return machine, workload


@given(workload_cases())
@settings(max_examples=80, deadline=None)
def test_forward_agrees_with_bidirectional(case):
    machine, workload = case
    expected = bidirectional_accepting(machine, workload)
    graph = AnnotatedGraph(machine)
    for u, v, word in workload.edges:
        graph.add_edge(u, v, word)
    for node in range(workload.n_vars):
        graph.nodes.add(node)
    solver = ForwardSolver(graph)
    solver.solve(workload.sources)
    actual = {n for n in range(workload.n_vars) if solver.reachable_accepting(n)}
    assert actual == expected


@given(workload_cases())
@settings(max_examples=80, deadline=None)
def test_backward_agrees_with_bidirectional_on_sources(case):
    """Backward solving from every node as sink: a source node reaches
    an accepting configuration iff the bidirectional solver says the
    sink is reached from it."""
    machine, workload = case
    expected = bidirectional_accepting(machine, workload)
    graph = AnnotatedGraph(machine)
    for u, v, word in workload.edges:
        graph.add_edge(u, v, word)
    for node in range(workload.n_vars):
        graph.nodes.add(node)
    # For each node t: t ∈ expected iff some source reaches t acceptingly.
    for target in range(workload.n_vars):
        per_sink = BackwardSolver(graph)
        per_sink.solve([target])
        hits = any(
            per_sink.reaches_accepting(source) for source in workload.sources
        )
        assert hits == (target in expected)
