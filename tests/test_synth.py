"""Tests for the synthetic workload generators."""

from repro.cfg import build_cfg
from repro.dfa.gallery import one_bit_machine
from repro.synth import (
    PackageSpec,
    TABLE1_PACKAGES,
    generate_package,
    random_annotated_graph,
)
from repro.synth.workloads import random_constraint_system, solve_bidirectional


class TestPackageGenerator:
    def test_deterministic(self):
        spec = PackageSpec("x", 1000, 12, seed=3)
        assert generate_package(spec) == generate_package(spec)

    def test_different_seeds_differ(self):
        a = generate_package(PackageSpec("x", 1000, 12, seed=1))
        b = generate_package(PackageSpec("x", 1000, 12, seed=2))
        assert a != b

    def test_size_close_to_target(self):
        spec = PackageSpec("x", 3000, 40, seed=9)
        lines = generate_package(spec).count("\n")
        assert 0.6 * spec.target_lines <= lines <= 1.8 * spec.target_lines

    def test_generated_code_parses_and_builds(self):
        spec = PackageSpec("x", 800, 10, seed=5)
        cfg = build_cfg(generate_package(spec))
        assert cfg.node_count() > 100
        assert "main" in cfg.functions

    def test_seeded_violation_detected(self):
        from repro.modelcheck import AnnotatedChecker, simple_privilege_property

        spec = PackageSpec("x", 500, 8, seed=5, violation=True)
        cfg = build_cfg(generate_package(spec))
        checker = AnnotatedChecker(cfg, simple_privilege_property())
        assert checker.check().has_violation

    def test_table1_specs_match_paper_sizes(self):
        sizes = {spec.name: spec.target_lines for spec in TABLE1_PACKAGES}
        assert sizes["vixiecron-3.0.1"] == 4_000
        assert sizes["at-3.1.8"] == 6_000
        assert sizes["sendmail-8.12.8"] == 222_000
        assert sizes["apache-2.0.40"] == 229_000


class TestGraphWorkloads:
    def test_shapes(self):
        machine = one_bit_machine()
        workload = random_annotated_graph(machine, 20, 50, seed=1, n_sources=2)
        assert workload.n_vars == 20
        assert len(workload.edges) == 50
        assert len(workload.sources) == 2
        for src, dst, word in workload.edges:
            assert 0 <= src < 20 and 0 <= dst < 20
            for sym in word:
                assert sym in machine.alphabet

    def test_deterministic(self):
        machine = one_bit_machine()
        a = random_annotated_graph(machine, 10, 20, seed=7)
        b = random_annotated_graph(machine, 10, 20, seed=7)
        assert a.edges == b.edges and a.sources == b.sources

    def test_solve_bidirectional_runs(self):
        machine = one_bit_machine()
        workload = random_annotated_graph(machine, 15, 40, seed=3)
        solver = solve_bidirectional(machine, workload)
        assert solver.fact_count() > 0

    def test_random_constraint_system_consistent_types(self):
        machine = one_bit_machine()
        solver = random_constraint_system(machine, 10, 60, seed=4)
        # inconsistencies are possible (random constructors may clash);
        # the solver must simply terminate with bounded facts.
        assert solver.fact_count() < 100_000


class TestEditStream:
    def spec(self, **overrides):
        from repro.synth import PackageSpec

        params = dict(name="es", target_lines=400, n_functions=8, seed=5)
        params.update(overrides)
        return PackageSpec(**params)

    def test_deterministic(self):
        from repro.synth import edit_stream

        a = [s.source for s in edit_stream(self.spec(), 5)]
        b = [s.source for s in edit_stream(self.spec(), 5)]
        assert a == b

    def test_step_zero_is_base_and_steps_parse(self):
        from repro.synth import edit_stream

        steps = list(edit_stream(self.spec(), 4))
        assert steps[0].kind == "base"
        assert len(steps) == 5
        for step in steps:
            build_cfg(step.source)  # every version is valid mini-C

    def test_edits_touch_one_function(self):
        from repro.synth import edit_stream

        steps = list(edit_stream(self.spec(), 6))
        for prev, cur in zip(steps, steps[1:]):
            old, new = prev.source.splitlines(), cur.source.splitlines()
            # a single-line insert/delete/replace: the diff is bounded
            assert abs(len(old) - len(new)) <= 1
            changed = sum(1 for a, b in zip(old, new) if a != b)
            # after one insertion everything shifts, so count from the
            # tail instead: lines outside the edited function match
            tail = sum(
                1
                for a, b in zip(reversed(old), reversed(new))
                if a == b
            )
            assert changed <= len(old) or tail > 0

    def test_function_bodies_independent_of_sibling_count(self):
        # fn_2's body depends only on (seed, index): shrinking the
        # package must not change it (only its callee list could, and
        # only for functions near the tail).
        from repro.synth import EditablePackage

        big = EditablePackage(self.spec(n_functions=12))
        small = EditablePackage(self.spec(n_functions=12, violation=False))
        assert big.body("fn_2") == small.body("fn_2")

    def test_stream_versions_diff_to_small_patches(self):
        from repro.core.annotations import CompiledMonoidAlgebra
        from repro.incremental import diff_programs
        from repro.modelcheck.properties import simple_privilege_property
        from repro.synth import edit_stream

        prop = simple_privilege_property()
        algebra = CompiledMonoidAlgebra(prop.machine)
        steps = list(edit_stream(self.spec(), 3))
        for prev, cur in zip(steps, steps[1:]):
            patch = diff_programs(prev.source, cur.source, prop, algebra)
            touched = len(patch.adds) + len(patch.retracts)
            assert 0 < touched < 150, "edit should perturb one function"
