"""Tests for the synthetic workload generators."""

from repro.cfg import build_cfg
from repro.dfa.gallery import one_bit_machine
from repro.synth import (
    PackageSpec,
    TABLE1_PACKAGES,
    generate_package,
    random_annotated_graph,
)
from repro.synth.workloads import random_constraint_system, solve_bidirectional


class TestPackageGenerator:
    def test_deterministic(self):
        spec = PackageSpec("x", 1000, 12, seed=3)
        assert generate_package(spec) == generate_package(spec)

    def test_different_seeds_differ(self):
        a = generate_package(PackageSpec("x", 1000, 12, seed=1))
        b = generate_package(PackageSpec("x", 1000, 12, seed=2))
        assert a != b

    def test_size_close_to_target(self):
        spec = PackageSpec("x", 3000, 40, seed=9)
        lines = generate_package(spec).count("\n")
        assert 0.6 * spec.target_lines <= lines <= 1.8 * spec.target_lines

    def test_generated_code_parses_and_builds(self):
        spec = PackageSpec("x", 800, 10, seed=5)
        cfg = build_cfg(generate_package(spec))
        assert cfg.node_count() > 100
        assert "main" in cfg.functions

    def test_seeded_violation_detected(self):
        from repro.modelcheck import AnnotatedChecker, simple_privilege_property

        spec = PackageSpec("x", 500, 8, seed=5, violation=True)
        cfg = build_cfg(generate_package(spec))
        checker = AnnotatedChecker(cfg, simple_privilege_property())
        assert checker.check().has_violation

    def test_table1_specs_match_paper_sizes(self):
        sizes = {spec.name: spec.target_lines for spec in TABLE1_PACKAGES}
        assert sizes["vixiecron-3.0.1"] == 4_000
        assert sizes["at-3.1.8"] == 6_000
        assert sizes["sendmail-8.12.8"] == 222_000
        assert sizes["apache-2.0.40"] == 229_000


class TestGraphWorkloads:
    def test_shapes(self):
        machine = one_bit_machine()
        workload = random_annotated_graph(machine, 20, 50, seed=1, n_sources=2)
        assert workload.n_vars == 20
        assert len(workload.edges) == 50
        assert len(workload.sources) == 2
        for src, dst, word in workload.edges:
            assert 0 <= src < 20 and 0 <= dst < 20
            for sym in word:
                assert sym in machine.alphabet

    def test_deterministic(self):
        machine = one_bit_machine()
        a = random_annotated_graph(machine, 10, 20, seed=7)
        b = random_annotated_graph(machine, 10, 20, seed=7)
        assert a.edges == b.edges and a.sources == b.sources

    def test_solve_bidirectional_runs(self):
        machine = one_bit_machine()
        workload = random_annotated_graph(machine, 15, 40, seed=3)
        solver = solve_bidirectional(machine, workload)
        assert solver.fact_count() > 0

    def test_random_constraint_system_consistent_types(self):
        machine = one_bit_machine()
        solver = random_constraint_system(machine, 10, 60, seed=4)
        # inconsistencies are possible (random constructors may clash);
        # the solver must simply terminate with bounded facts.
        assert solver.fact_count() < 100_000
