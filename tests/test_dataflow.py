"""Tests for the interprocedural bit-vector dataflow analyses."""

from repro.cfg import build_cfg
from repro.dataflow import (
    AnnotatedBitVectorAnalysis,
    FunctionalBitVectorAnalysis,
    privilege_fact_problem,
    variable_def_problem,
)
from repro.dataflow.classic import IDENTITY, apply, compose, join
from repro.dataflow.problems import call_tracking_problem


class TestGenKillAlgebra:
    def test_compose_kill_after_gen(self):
        gen_a = (frozenset({0}), frozenset())
        kill_a = (frozenset(), frozenset({0}))
        assert compose(gen_a, kill_a) == (frozenset(), frozenset({0}))
        assert compose(kill_a, gen_a) == (frozenset({0}), frozenset({0}))

    def test_compose_identity(self):
        fn = (frozenset({1}), frozenset({2}))
        assert compose(IDENTITY, fn) == fn
        assert compose(fn, IDENTITY) == fn

    def test_join_is_union_may(self):
        left = (frozenset({0}), frozenset({1}))
        right = (frozenset({2}), frozenset({1, 3}))
        joined = join(left, right)
        assert joined == (frozenset({0, 2}), frozenset({1}))
        # join(f,g)(X) == f(X) | g(X) on samples
        for facts in [frozenset(), frozenset({1}), frozenset({3})]:
            assert apply(joined, facts) == apply(left, facts) | apply(right, facts)

    def test_join_with_bottom(self):
        fn = (frozenset({0}), frozenset())
        assert join(None, fn) == fn
        assert join(fn, None) == fn
        assert join(None, None) is None


class TestPrivilegeFact:
    def test_straight_line(self):
        source = """
        int main() {
          seteuid(0);
          execl("/x", 0);
          seteuid(getuid());
          done();
          return 0;
        }
        """
        cfg = build_cfg(source)
        problem = privilege_fact_problem()
        analysis = AnnotatedBitVectorAnalysis(cfg, problem)
        execl_node = next(
            n for n in cfg.all_nodes() if n.call and n.call.callee == "execl"
        )
        done_node = next(
            n for n in cfg.all_nodes() if n.call and n.call.callee == "done"
        )
        assert analysis.may_hold(execl_node) == {0}
        assert analysis.may_hold(done_node) == frozenset()
        assert analysis.must_not_hold(done_node) == {0}

    def test_branch_merges_may(self):
        source = """
        int main() {
          if (x) { seteuid(0); }
          probe();
          return 0;
        }
        """
        cfg = build_cfg(source)
        analysis = AnnotatedBitVectorAnalysis(cfg, privilege_fact_problem())
        probe = next(n for n in cfg.all_nodes() if n.call and n.call.callee == "probe")
        assert analysis.may_hold(probe) == {0}  # may (not must)

    def test_interprocedural_kill_via_summary(self):
        source = """
        void drop() { seteuid(getuid()); }
        int main() { seteuid(0); drop(); probe(); return 0; }
        """
        cfg = build_cfg(source)
        analysis = AnnotatedBitVectorAnalysis(cfg, privilege_fact_problem())
        probe = next(n for n in cfg.all_nodes() if n.call and n.call.callee == "probe")
        assert analysis.may_hold(probe) == frozenset()

    def test_facts_inside_callee_reflect_callers(self):
        source = """
        void helper() { probe(); }
        int main() { seteuid(0); helper(); return 0; }
        """
        cfg = build_cfg(source)
        analysis = AnnotatedBitVectorAnalysis(cfg, privilege_fact_problem())
        probe = next(n for n in cfg.all_nodes() if n.call and n.call.callee == "probe")
        assert analysis.may_hold(probe) == {0}


class TestVariableDefs:
    def test_defs_seen(self):
        source = """
        int main() {
          int a = 1;
          int b;
          b = a;
          probe();
          return 0;
        }
        """
        cfg = build_cfg(source)
        problem = variable_def_problem(cfg, ["a", "b", "c"])
        analysis = FunctionalBitVectorAnalysis(cfg, problem)
        probe = next(n for n in cfg.all_nodes() if n.call and n.call.callee == "probe")
        held = analysis.may_hold(probe)
        assert problem.fact_index("a") in held
        assert problem.fact_index("b") in held
        assert problem.fact_index("c") not in held


class TestCallTracking:
    def test_order_independent_bits_collapse(self):
        """Section 4: g1·g2 ≡ g2·g1 — both orders give one annotation."""
        source = """
        int main() {
          if (x) { alpha(); beta(); } else { beta(); alpha(); }
          probe();
          return 0;
        }
        """
        cfg = build_cfg(source)
        problem = call_tracking_problem(cfg, ["alpha", "beta"])
        analysis = AnnotatedBitVectorAnalysis(cfg, problem)
        probe = next(n for n in cfg.all_nodes() if n.call and n.call.callee == "probe")
        assert analysis.may_hold(probe) == {0, 1}
        reach = analysis.reachability()
        annotations = reach.annotations_of(analysis.node_var(probe), analysis.pc)
        # both branches collapse to the same product annotation
        assert len(annotations) == 1

    def test_unreachable_function_has_no_facts(self):
        source = """
        void dead() { alpha(); probe(); }
        int main() { return 0; }
        """
        cfg = build_cfg(source)
        problem = call_tracking_problem(cfg, ["alpha"])
        annotated = AnnotatedBitVectorAnalysis(cfg, problem)
        classic = FunctionalBitVectorAnalysis(cfg, problem)
        probe = next(n for n in cfg.all_nodes() if n.call and n.call.callee == "probe")
        assert annotated.may_hold(probe) == frozenset()
        assert classic.may_hold(probe) == frozenset()

    def test_solution_shape(self):
        source = "int main() { alpha(); return 0; }"
        cfg = build_cfg(source)
        problem = call_tracking_problem(cfg, ["alpha"])
        solution = AnnotatedBitVectorAnalysis(cfg, problem).solution()
        assert set(solution) == {n.id for n in cfg.all_nodes()}
