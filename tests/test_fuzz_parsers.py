"""Robustness fuzzing: parsers must parse or raise their own errors.

Random token soups and mutated valid programs must never crash with an
unexpected exception type — a front end that dies with IndexError on
malformed input is not production quality.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.lexer import LexError
from repro.cfg.parser import ParseError, parse_program
from repro.dfa.regex import RegexSyntaxError, regex_to_dfa
from repro.dfa.spec import SpecSyntaxError, parse_spec
from repro.flow.lang import FlowSyntaxError, parse_flow_program

C_TOKENS = [
    "int", "void", "if", "else", "while", "return", "break", "switch",
    "case", "default", "{", "}", "(", ")", ";", ",", "=", "+", "*", "&",
    "x", "y", "f", "main", "0", "1", '"s"',
]

FLOW_TOKENS = [
    "main", "f", "(", ")", ":", ";", "=", "int", "*", "->", ",", ".",
    "1", "2", "@", "^", "if", "then", "else", "let", "in", "x", "A",
]

SPEC_TOKENS = [
    "start", "accept", "state", "A", "B", ":", ";", "|", "->", "sym",
    "(", ")", "x", ",",
]


@given(st.integers(min_value=0, max_value=10**9), st.integers(2, 40))
@settings(max_examples=200, deadline=None)
def test_c_parser_never_crashes(seed, length):
    rng = random.Random(seed)
    source = " ".join(rng.choice(C_TOKENS) for _ in range(length))
    try:
        parse_program(source)
    except (ParseError, LexError):
        pass  # rejecting is fine; crashing is not


@given(st.integers(min_value=0, max_value=10**9), st.integers(2, 30))
@settings(max_examples=200, deadline=None)
def test_flow_parser_never_crashes(seed, length):
    rng = random.Random(seed)
    source = " ".join(rng.choice(FLOW_TOKENS) for _ in range(length))
    try:
        parse_flow_program(source)
    except FlowSyntaxError:
        pass


@given(st.integers(min_value=0, max_value=10**9), st.integers(2, 25))
@settings(max_examples=200, deadline=None)
def test_spec_parser_never_crashes(seed, length):
    rng = random.Random(seed)
    source = " ".join(rng.choice(SPEC_TOKENS) for _ in range(length))
    try:
        parse_spec(source)
    except SpecSyntaxError:
        pass


@given(st.text(alphabet="ab()|*+?<>\\", max_size=15))
@settings(max_examples=200, deadline=None)
def test_regex_parser_never_crashes(pattern):
    try:
        regex_to_dfa(pattern)
    except RegexSyntaxError:
        pass


@given(st.text(max_size=30))
@settings(max_examples=100, deadline=None)
def test_c_lexer_rejects_or_tokenizes_arbitrary_text(text):
    from repro.cfg.lexer import tokenize

    try:
        list(tokenize(text))
    except LexError:
        pass
