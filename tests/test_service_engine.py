"""Tests for the cached analysis engine (facade, warm-start, what-if)."""

import textwrap

import pytest

from repro.cfg import build_cfg
from repro.modelcheck import AnnotatedChecker, simple_privilege_property
from repro.service import AnalysisEngine, EngineError
from repro.service import protocol

VULNERABLE = textwrap.dedent(
    """
    void drop() {
      seteuid(getuid());
    }
    int main() {
      seteuid(0);
      execl("/bin/sh");
      drop();
      return 0;
    }
    """
)

CLEAN = textwrap.dedent(
    """
    int main() {
      seteuid(0);
      seteuid(getuid());
      execl("/bin/sh");
      return 0;
    }
    """
)

FIG11 = """
pair(y : int) : b = (1@A, y@Y)@P;
main() : int = (pair^i(2@B)).2@V;
"""


class TestCheckCaching:
    def test_matches_direct_checker(self):
        engine = AnalysisEngine()
        result = engine.check(VULNERABLE, "simple-privilege")
        direct = AnnotatedChecker(
            build_cfg(VULNERABLE), simple_privilege_property()
        ).check()
        assert result["has_violation"] == direct.has_violation
        assert {v["line"] for v in result["violations"]} == direct.violation_lines()

    def test_repeat_hits_cache(self):
        engine = AnalysisEngine()
        first = engine.check(VULNERABLE, "simple-privilege")
        second = engine.check(VULNERABLE, "simple-privilege")
        assert first == second
        assert engine.metrics.get("cache.solve.misses") == 1
        assert engine.metrics.get("cache.solve.hits") == 1

    def test_different_programs_share_compiled_machine(self):
        engine = AnalysisEngine()
        engine.check(VULNERABLE, "simple-privilege")
        machine_misses = engine.metrics.get("cache.machine.misses")
        engine.check(CLEAN, "simple-privilege")
        # second program: solve cache miss, but no new machine compile
        assert engine.metrics.get("cache.solve.misses") == 2
        assert engine.metrics.get("cache.machine.misses") == machine_misses
        assert engine.metrics.get("cache.machine.hits") > 0

    def test_clean_program(self):
        engine = AnalysisEngine()
        result = engine.check(CLEAN, "simple-privilege")
        assert not result["has_violation"]
        assert result["violations"] == []

    def test_unknown_property(self):
        engine = AnalysisEngine()
        with pytest.raises(EngineError) as err:
            engine.check(VULNERABLE, "no-such-property")
        assert err.value.code == protocol.E_UNSUPPORTED

    def test_parse_error(self):
        engine = AnalysisEngine()
        with pytest.raises(EngineError) as err:
            engine.check("int main( {", "simple-privilege")
        assert err.value.code == protocol.E_PARSE

    def test_parametric_property_served(self):
        program = textwrap.dedent(
            """
            int main() {
              int fd = open("a");
              close(fd);
              close(fd);
              return 0;
            }
            """
        )
        engine = AnalysisEngine()
        result = engine.check(program, "file-state")
        assert result["has_violation"]
        assert any(
            v["instantiation"] == {"x": "fd"} for v in result["violations"]
        )

    def test_max_findings_truncates(self):
        engine = AnalysisEngine()
        full = engine.check(VULNERABLE, "simple-privilege")
        truncated = engine.check(VULNERABLE, "simple-privilege", max_findings=1)
        assert len(full["violations"]) > 1
        assert len(truncated["violations"]) == 1

    def test_lru_eviction(self):
        engine = AnalysisEngine(cache_size=1)
        engine.check(VULNERABLE, "simple-privilege")
        engine.check(CLEAN, "simple-privilege")
        assert engine.metrics.get("cache.solve.evictions") == 1
        # evicted entry re-solves
        engine.check(VULNERABLE, "simple-privilege")
        assert engine.metrics.get("cache.solve.misses") == 3


class TestSnapshotWarmStart:
    def test_warm_start_equivalent(self, tmp_path):
        cold_engine = AnalysisEngine(snapshot_dir=tmp_path)
        cold = cold_engine.check(VULNERABLE, "simple-privilege")
        assert cold_engine.metrics.get("cache.snapshot.saved") == 1

        warm_engine = AnalysisEngine(snapshot_dir=tmp_path)
        warm = warm_engine.check(VULNERABLE, "simple-privilege")
        assert warm_engine.metrics.get("cache.snapshot.warm") == 1
        assert warm["has_violation"] == cold["has_violation"]
        assert {v["line"] for v in warm["violations"]} == {
            v["line"] for v in cold["violations"]
        }

    def test_corrupt_snapshot_falls_back_to_cold(self, tmp_path):
        engine = AnalysisEngine(snapshot_dir=tmp_path)
        engine.check(VULNERABLE, "simple-privilege")
        (snapshot,) = list(tmp_path.iterdir())
        snapshot.write_text("{definitely not json")
        fresh = AnalysisEngine(snapshot_dir=tmp_path)
        result = fresh.check(VULNERABLE, "simple-privilege")
        assert result["has_violation"]
        assert fresh.metrics.get("cache.snapshot.warm") == 0

    def test_parametric_not_snapshotted(self, tmp_path):
        program = 'int main() { int fd = open("a"); close(fd); close(fd); return 0; }'
        engine = AnalysisEngine(snapshot_dir=tmp_path)
        engine.check(program, "file-state")
        assert list(tmp_path.iterdir()) == []


class TestDataflow:
    def test_result_shape(self):
        engine = AnalysisEngine()
        result = engine.dataflow(VULNERABLE, ["seteuid", "execl"])
        assert result["facts"] == ["seteuid", "execl"]
        by_line = {node["line"]: node["may_hold"] for node in result["nodes"]}
        # by the execl call, seteuid has definitely been called
        assert any("seteuid" in held for held in by_line.values())

    def test_cache_key_includes_track(self):
        engine = AnalysisEngine()
        engine.dataflow(VULNERABLE, ["seteuid"])
        engine.dataflow(VULNERABLE, ["execl"])
        assert engine.metrics.get("cache.solve.misses") == 2
        engine.dataflow(VULNERABLE, ["seteuid"])
        assert engine.metrics.get("cache.solve.hits") == 1

    def test_empty_track_rejected(self):
        engine = AnalysisEngine()
        with pytest.raises(EngineError) as err:
            engine.dataflow(VULNERABLE, [])
        assert err.value.code == protocol.E_BAD_REQUEST


class TestFlowAndWhatIf:
    def test_flow_query(self):
        engine = AnalysisEngine()
        result = engine.flow(FIG11, query=["B", "V"])
        assert result["flows"] is True
        assert engine.flow(FIG11, query=["A", "V"])["flows"] is False

    def test_flow_pairs(self):
        engine = AnalysisEngine()
        result = engine.flow(FIG11)
        assert ["B", "V"] in result["pairs"]
        assert ["A", "V"] not in result["pairs"]

    def test_what_if_layers_and_rolls_back(self):
        engine = AnalysisEngine()
        base = engine.flow(FIG11, query=["A", "V"])
        assert base["flows"] is False
        speculative = engine.flow(FIG11, query=["A", "V"], assume=[["A", "B"]])
        assert speculative["flows"] is True
        # the speculative constraints were retracted: base answer intact
        after = engine.flow(FIG11, query=["A", "V"])
        assert after["flows"] is False
        assert engine.metrics.get("whatif.queries") == 1
        stats = engine.stats()
        assert stats["solver"]["rollbacks"] == 1
        # the what-if reused the solved system instead of re-solving
        assert engine.metrics.get("cache.solve.misses") == 1

    def test_assume_requires_query(self):
        engine = AnalysisEngine()
        with pytest.raises(EngineError) as err:
            engine.flow(FIG11, assume=[["A", "B"]])
        assert err.value.code == protocol.E_BAD_REQUEST

    def test_unknown_label(self):
        engine = AnalysisEngine()
        with pytest.raises(EngineError) as err:
            engine.flow(FIG11, query=["Nope", "V"])
        assert err.value.code == protocol.E_BAD_REQUEST

    def test_flow_parse_error(self):
        engine = AnalysisEngine()
        with pytest.raises(EngineError) as err:
            engine.flow("main() : int = $$$;")
        assert err.value.code == protocol.E_PARSE


class TestStats:
    def test_shape(self):
        engine = AnalysisEngine()
        engine.check(VULNERABLE, "simple-privilege")
        stats = engine.stats()
        assert stats["protocol"] == protocol.PROTOCOL_VERSION
        assert stats["cache"]["entries"] == 1
        assert stats["solver"]["edges_added"] > 0
        assert stats["solver"]["compositions"] > 0
        assert stats["counters"]["cache.solve.misses"] == 1
        assert stats["timers"]["solve"]["count"] == 1

    def test_dispatch_routes_all_ops(self):
        engine = AnalysisEngine()
        assert engine.dispatch("ping", {})["pong"] is True
        assert "counters" in engine.dispatch("stats", {})
        assert engine.dispatch(
            "check", {"program": CLEAN, "property": "simple-privilege"}
        )["has_violation"] is False
        assert engine.dispatch(
            "dataflow", {"program": CLEAN, "track": ["seteuid"]}
        )["facts"] == ["seteuid"]
        assert engine.dispatch("flow", {"program": FIG11})["pairs"]
