"""Tests for the CLI and the DOT renderers."""

import pytest

from repro.cli import main
from repro.render import cfg_to_dot, constraint_graph_to_dot, dfa_to_dot


@pytest.fixture
def vulnerable_c(tmp_path):
    path = tmp_path / "vuln.c"
    path.write_text(
        """
        int main() {
          seteuid(0);
          if (c) { seteuid(getuid()); }
          execl("/bin/sh", 0);
          return 0;
        }
        """
    )
    return str(path)


@pytest.fixture
def clean_c(tmp_path):
    path = tmp_path / "clean.c"
    path.write_text(
        "int main() { seteuid(0); seteuid(getuid()); execl(\"/x\", 0); }"
    )
    return str(path)


class TestCheckCommand:
    def test_violation_exit_code(self, vulnerable_c, capsys):
        assert main(["check", vulnerable_c, "--property", "simple-privilege"]) == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out

    def test_clean_exit_code(self, clean_c, capsys):
        assert main(["check", clean_c, "--property", "simple-privilege"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_both_engines(self, vulnerable_c, capsys):
        assert (
            main(
                [
                    "check",
                    vulnerable_c,
                    "--property",
                    "simple-privilege",
                    "--engine",
                    "both",
                    "--traces",
                ]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "[annotated]" in out and "[mops]" in out

    def test_collapse_cycles_flag(self, vulnerable_c):
        assert (
            main(
                [
                    "check",
                    vulnerable_c,
                    "--property",
                    "simple-privilege",
                    "--collapse-cycles",
                ]
            )
            == 1
        )

    def test_max_findings_caps_output(self, vulnerable_c, capsys):
        main(
            [
                "check",
                vulnerable_c,
                "--property",
                "simple-privilege",
                "--max-findings",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert "more" in out


class TestOtherCommands:
    def test_dataflow(self, vulnerable_c, capsys):
        assert main(["dataflow", vulnerable_c, "--track", "seteuid"]) == 0
        assert "may-hold" in capsys.readouterr().out

    def test_flow_query(self, tmp_path, capsys):
        path = tmp_path / "prog.flow"
        path.write_text(
            "pair(y : int) : b = (1@A, y@Y)@P;\n"
            "main() : int = (pair^i(2@B)).2@V;\n"
        )
        assert main(["flow", str(path), "--query", "B", "V"]) == 0
        assert main(["flow", str(path), "--query", "A", "V"]) == 1
        assert main(["flow", str(path)]) == 0
        assert "B -> V" in capsys.readouterr().out

    def test_machine(self, capsys):
        assert main(["machine", "privilege"]) == 0
        out = capsys.readouterr().out
        assert "|F_M| = 6" in out

    def test_machine_dot(self, capsys):
        assert main(["machine", "one-bit", "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_spec(self, tmp_path, capsys):
        path = tmp_path / "prop.spec"
        path.write_text(
            "start state A : | s -> B;\naccept state B;\n"
        )
        assert main(["spec", str(path), "--dot"]) == 0
        out = capsys.readouterr().out
        assert "|F_M|" in out and "digraph" in out


class TestRenderers:
    def test_dfa_dot(self):
        from repro.dfa.gallery import privilege_machine

        dot = dfa_to_dot(privilege_machine(), title="priv")
        assert "digraph" in dot
        assert "doublecircle" in dot  # the accept state
        assert "seteuid_zero" in dot

    def test_dfa_dot_state_names(self):
        from repro.dfa.gallery import privilege_machine

        dot = dfa_to_dot(privilege_machine(), state_names={0: "Unpriv"})
        assert "Unpriv" in dot

    def test_cfg_dot(self):
        from repro.cfg import build_cfg

        cfg = build_cfg("void f() { } int main() { f(); }")
        dot = cfg_to_dot(cfg)
        assert "cluster_main" in dot and "cluster_f" in dot
        assert "style=dashed" in dot  # call/return edges

    def test_constraint_graph_dot(self):
        from repro.core.solver import Solver
        from repro.core.terms import Variable, constant

        solver = Solver()
        solver.add(constant("c"), Variable("X"))
        solver.add(Variable("X"), Variable("Y"))
        dot = constraint_graph_to_dot(solver)
        assert "digraph" in dot and "shape=box" in dot


class TestCLIFlowPN:
    def test_pn_flag_changes_verdict(self, tmp_path):
        path = tmp_path / "prog.flow"
        path.write_text(
            "pair(y : int) : b = (1@A, y@Y)@P;\n"
            "main() : int = (pair^i(2@B)).2@V;\n"
        )
        # matched: B does not flow to the formal Y
        assert main(["flow", str(path), "--query", "B", "Y"]) == 1
        # pn: it does (pending call)
        assert main(["flow", str(path), "--pn", "--query", "B", "Y"]) == 0

    def test_dataflow_lists_facts(self, vulnerable_c, capsys):
        main(["dataflow", vulnerable_c, "--track", "seteuid", "execl"])
        out = capsys.readouterr().out
        assert "facts: seteuid, execl" in out
