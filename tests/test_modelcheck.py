"""Tests for the annotated-constraint model checker (Section 6)."""

import pytest

from repro.cfg import build_cfg
from repro.modelcheck import (
    AnnotatedChecker,
    file_state_property,
    full_privilege_property,
    simple_privilege_property,
)

SEC63_PROGRAM = """
int main() {
  seteuid(0);
  if (c) {
    seteuid(getuid());
  } else {
    other();
  }
  execl("/bin/sh", "sh", 0);
  return 0;
}
"""


class TestSection63Example:
    def setup_method(self):
        self.cfg = build_cfg(SEC63_PROGRAM)
        self.checker = AnnotatedChecker(self.cfg, simple_privilege_property())
        self.result = self.checker.check(traces=True)

    def test_violation_found(self):
        assert self.result.has_violation

    def test_violation_after_execl(self):
        # pc^{f_error} first appears after the execl statement (line 9).
        assert 9 in {
            node.line
            for violation in self.result.violations
            for node in [violation.node]
        } or any(v.node.line >= 9 for v in self.result.violations)

    def test_witness_passes_through_else_branch(self):
        violation = min(self.result.violations, key=lambda v: v.node.id)
        lines = [node.line for node in violation.trace]
        assert 7 in lines  # other() on the un-dropped path
        assert 9 in lines  # the execl
        assert 5 not in lines  # not the dropped path

    def test_fix_removes_violation(self):
        fixed = SEC63_PROGRAM.replace("other();", "seteuid(getuid());")
        checker = AnnotatedChecker(build_cfg(fixed), simple_privilege_property())
        assert not checker.check().has_violation
        assert not checker.has_violation()


class TestInterprocedural:
    def test_violation_inside_callee(self):
        source = """
        void danger() { execl("/bin/sh", 0); }
        int main() { seteuid(0); danger(); return 0; }
        """
        checker = AnnotatedChecker(build_cfg(source), simple_privilege_property())
        assert checker.check().has_violation

    def test_drop_in_callee_respected(self):
        source = """
        void drop() { seteuid(getuid()); }
        int main() { seteuid(0); drop(); execl("/bin/x", 0); return 0; }
        """
        checker = AnnotatedChecker(build_cfg(source), simple_privilege_property())
        assert not checker.check().has_violation

    def test_context_sensitivity(self):
        # helper() execs — fine when called unprivileged, bad when
        # called privileged.  A context-insensitive analysis would
        # flag both call sites or neither.
        source = """
        void helper() { execl("/bin/x", 0); }
        int main() {
          helper();
          seteuid(0);
          helper();
          return 0;
        }
        """
        checker = AnnotatedChecker(build_cfg(source), simple_privilege_property())
        result = checker.check()
        assert result.has_violation

    def test_unprivileged_context_clean(self):
        source = """
        void helper() { execl("/bin/x", 0); }
        int main() { helper(); return 0; }
        """
        checker = AnnotatedChecker(build_cfg(source), simple_privilege_property())
        assert not checker.check().has_violation

    def test_recursive_function(self):
        source = """
        void loop(int n) { if (n) { loop(n - 1); } else { execl("/x", 0); } }
        int main() { seteuid(0); loop(3); return 0; }
        """
        checker = AnnotatedChecker(build_cfg(source), simple_privilege_property())
        assert checker.check().has_violation

    def test_error_unreachable_through_dead_function(self):
        # danger() is never called: no violation.
        source = """
        void danger() { execl("/x", 0); }
        int main() { seteuid(0); seteuid(getuid()); return 0; }
        """
        checker = AnnotatedChecker(build_cfg(source), simple_privilege_property())
        assert not checker.check().has_violation


class TestFullPrivilegeProperty:
    def test_saved_uid_reacquisition(self):
        # seteuid(getuid()) does not reset the saved uid: a shell
        # spawned via system() could restore root (a real MOPS finding).
        source = """
        int main() { seteuid(1); system("ls"); return 0; }
        """
        checker = AnnotatedChecker(build_cfg(source), full_privilege_property())
        assert checker.check().has_violation

    def test_full_drop_is_clean(self):
        source = """
        int main() { setuid(1); system("ls"); return 0; }
        """
        checker = AnnotatedChecker(build_cfg(source), full_privilege_property())
        assert not checker.check().has_violation


class TestParametricFileProperty:
    def test_fig6_descriptor_states(self):
        source = """
        int main() {
          int fd1 = open("file1", 0);
          int fd2 = open("file2", 0);
          close(fd1);
          return 0;
        }
        """
        cfg = build_cfg(source)
        prop = file_state_property()
        checker = AnnotatedChecker(cfg, prop)
        assert not checker.check().has_violation
        states = checker.states_at(cfg.main.exit)
        machine = prop.machine
        closed, opened = machine.start, machine.run(["open"])
        assert states[frozenset({("x", "fd1")})] == {closed}
        assert states[frozenset({("x", "fd2")})] == {opened}

    def test_double_close_flagged_per_descriptor(self):
        source = """
        int main() {
          int fd1 = open("a", 0);
          int fd2 = open("b", 0);
          close(fd1);
          close(fd1);
          return 0;
        }
        """
        checker = AnnotatedChecker(build_cfg(source), file_state_property())
        result = checker.check()
        assert result.has_violation
        instantiations = {
            violation.instantiation
            for violation in result.violations
            if violation.instantiation is not None
        }
        assert (("x", "fd1"),) in instantiations
        assert (("x", "fd2"),) not in instantiations

    def test_branch_sensitive_state_tracking(self):
        source = """
        int main() {
          int fd = open("a", 0);
          if (x) { close(fd); }
          return 0;
        }
        """
        cfg = build_cfg(source)
        prop = file_state_property()
        checker = AnnotatedChecker(cfg, prop)
        states = checker.states_at(cfg.main.exit)
        machine = prop.machine
        # both closed and opened are possible at exit
        assert states[frozenset({("x", "fd")})] == {
            machine.start,
            machine.run(["open"]),
        }


class TestResultPlumbing:
    def test_counts_populated(self):
        checker = AnnotatedChecker(build_cfg(SEC63_PROGRAM), simple_privilege_property())
        result = checker.check()
        assert result.constraints > 0
        assert result.facts > 0

    def test_describe(self):
        checker = AnnotatedChecker(build_cfg(SEC63_PROGRAM), simple_privilege_property())
        result = checker.check()
        text = result.violations[0].describe()
        assert "violation at" in text

    def test_non_parametric_mapper_with_labels_rejected(self):
        from repro.cfg.graph import CFGNode
        from repro.dfa.gallery import privilege_machine
        from repro.modelcheck.properties import Property

        bad = Property(
            name="bad",
            machine=privilege_machine(),
            event_of=lambda node: ("execl", ("oops",)) if node.call else None,
        )
        with pytest.raises(ValueError):
            AnnotatedChecker(build_cfg("int main() { f(1); }"), bad)
