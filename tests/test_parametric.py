"""Tests for substitution environments (Section 6.4)."""

import pytest

from repro.core.parametric import ParametricAlgebra, SubstitutionEnvironment
from repro.dfa.gallery import file_state_machine
from repro.dfa.monoid import TransitionMonoid


@pytest.fixture
def machinery():
    machine = file_state_machine()
    monoid = TransitionMonoid(machine)
    algebra = ParametricAlgebra(machine, {"open": ("x",), "close": ("x",)})
    return machine, monoid, algebra


class TestEnvironmentBasics:
    def test_identity(self, machinery):
        _machine, _monoid, algebra = machinery
        assert algebra.identity.is_identity()
        env = algebra.symbol("open", ["fd1"])
        assert algebra.then(env, algebra.identity) == env
        assert algebra.then(algebra.identity, env) == env

    def test_parametric_symbol_shape(self, machinery):
        _machine, monoid, algebra = machinery
        env = algebra.symbol("open", ["fd1"])
        assert env.domain() == (frozenset({("x", "fd1")}),)
        assert env.residual == monoid.identity
        assert env.lookup(frozenset({("x", "fd1")})) == monoid.generator("open")

    def test_nonparametric_symbol_is_residual(self):
        from repro.dfa.gallery import privilege_machine

        algebra = ParametricAlgebra(privilege_machine())
        env = algebra.symbol("execl")
        assert not env.entries
        assert env.residual == algebra.base.symbol("execl")

    def test_label_arity_checked(self, machinery):
        _machine, _monoid, algebra = machinery
        with pytest.raises(ValueError):
            algebra.symbol("open")  # missing label
        with pytest.raises(ValueError):
            algebra.symbol("open", ["a", "b"])


class TestPaperExample:
    """The Section 6.4.1 walkthrough (Figs 6 and 7)."""

    def test_fig7_composition(self, machinery):
        _machine, monoid, algebra = machinery
        # φ1 = open(fd1); φ2 = open(fd2); φ3 = close(fd1)
        phi1 = algebra.symbol("open", ["fd1"])
        phi2 = algebra.symbol("open", ["fd2"])
        phi3 = algebra.symbol("close", ["fd1"])
        # φ3 ∘ φ2 ∘ φ1 (word order: φ1 then φ2 then φ3)
        composed = algebra.then(algebra.then(phi1, phi2), phi3)
        f_open = monoid.generator("open")
        f_open_close = f_open.then(monoid.generator("close"))
        fd1 = frozenset({("x", "fd1")})
        fd2 = frozenset({("x", "fd2")})
        # fd1: opened then closed; fd2: opened (still open).
        assert composed.lookup(fd1) == f_open_close
        assert composed.lookup(fd2) == f_open
        assert composed.residual == monoid.identity

    def test_states_of(self, machinery):
        machine, _monoid, algebra = machinery
        composed = algebra.then(
            algebra.then(
                algebra.symbol("open", ["fd1"]), algebra.symbol("open", ["fd2"])
            ),
            algebra.symbol("close", ["fd1"]),
        )
        states = algebra.states_of(composed)
        closed = machine.start
        fd1 = frozenset({("x", "fd1")})
        fd2 = frozenset({("x", "fd2")})
        assert states[fd1] == closed
        assert states[fd2] != closed  # Opened

    def test_double_close_accepting(self, machinery):
        _machine, _monoid, algebra = machinery
        env = algebra.then(
            algebra.symbol("close", ["fd1"]), algebra.symbol("close", ["fd1"])
        )
        assert algebra.accepting_instantiations(env) == [frozenset({("x", "fd1")})]
        assert algebra.is_accepting(env)


class TestResidualIncorporation:
    def test_new_instantiation_picks_up_residual(self):
        """A non-parametric event seen before a descriptor's first event
        must already be incorporated when the new instantiation forms."""
        from repro.dfa.spec import parse_spec

        spec = parse_spec(
            """
            start state A :
                | reset -> A
                | touch(x) -> B;
            state B : | touch(x) -> C;
            accept state C;
            """
        )
        machine = spec.to_dfa()
        algebra = ParametricAlgebra(machine, {"touch": ("x",)})
        monoid = TransitionMonoid(machine)
        reset = algebra.symbol("reset")
        touch = algebra.symbol("touch", ["k"])
        env = algebra.then(reset, touch)
        key = frozenset({("x", "k")})
        assert env.lookup(key) == monoid.of_word(["reset", "touch"])
        assert env.residual == monoid.of_word(["reset"])


class TestMultipleParameters:
    def test_entry_merging(self):
        from repro.dfa.spec import parse_spec

        spec = parse_spec(
            """
            start state S : | pairup(x, y) -> T;
            accept state T : | solo(x) -> S;
            """
        )
        machine = spec.to_dfa()
        algebra = ParametricAlgebra(
            machine, {"pairup": ("x", "y"), "solo": ("x",)}
        )
        both = algebra.symbol("pairup", ["i", "j"])  # key {(x,i),(y,j)}
        one = algebra.symbol("solo", ["i"])  # key {(x,i)}
        merged = algebra.then(both, one)
        # Compatible entries merge to the union of bindings.
        union_key = frozenset({("x", "i"), ("y", "j")})
        monoid = TransitionMonoid(machine)
        assert merged.lookup(union_key) == monoid.of_word(["pairup", "solo"])

    def test_incompatible_entries_stay_separate(self):
        machine = file_state_machine()
        algebra = ParametricAlgebra(machine, {"open": ("x",), "close": ("x",)})
        a = algebra.symbol("open", ["p"])
        b = algebra.symbol("open", ["q"])
        merged = algebra.then(a, b)
        keys = set(merged.domain())
        assert frozenset({("x", "p")}) in keys
        assert frozenset({("x", "q")}) in keys
        # no merged {(x,p),(x,q)} key — same parameter, different labels
        assert all(len(key) == 1 for key in keys)


class TestNormalization:
    def test_redundant_entries_dropped(self, machinery):
        _machine, monoid, algebra = machinery
        # An entry equal to what the residual lookup would give is noise.
        env = SubstitutionEnvironment(
            {frozenset({("x", "fd")}): monoid.identity}, monoid.identity
        )
        assert env.entries == ()
        assert env == algebra.identity

    def test_behaviourally_equal_envs_hash_equal(self, machinery):
        _machine, monoid, algebra = machinery
        open_fn = monoid.generator("open")
        direct = SubstitutionEnvironment(
            {frozenset({("x", "a")}): open_fn}, monoid.identity
        )
        with_noise = SubstitutionEnvironment(
            {
                frozenset({("x", "a")}): open_fn,
                frozenset({("x", "b")}): monoid.identity,
            },
            monoid.identity,
        )
        assert direct == with_noise
        assert hash(direct) == hash(with_noise)

    def test_immutable(self, machinery):
        _machine, _monoid, algebra = machinery
        with pytest.raises(AttributeError):
            algebra.identity.residual = None


class TestAssociativity:
    def test_composition_associative(self, machinery):
        _machine, _monoid, algebra = machinery
        a = algebra.symbol("open", ["f1"])
        b = algebra.symbol("close", ["f1"])
        c = algebra.symbol("open", ["f2"])
        left = algebra.then(algebra.then(a, b), c)
        right = algebra.then(a, algebra.then(b, c))
        assert left == right
