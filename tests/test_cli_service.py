"""Tests for CLI error handling, --version, and the query/serve commands."""

import json

import pytest

import repro
from repro.cli import main

VULNERABLE = """
int main() {
  seteuid(0);
  execl("/bin/sh");
  return 0;
}
"""

FIG11 = """
pair(y : int) : b = (1@A, y@Y)@P;
main() : int = (pair^i(2@B)).2@V;
"""


class TestErrorHandling:
    def test_missing_file_exits_2(self, capsys):
        code = main(["check", "/no/such/file.c", "--property", "simple-privilege"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert len(err.strip().splitlines()) == 1  # one line, no traceback
        assert "Traceback" not in err

    def test_parse_failure_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text("int main( {")
        code = main(["check", str(bad), "--property", "simple-privilege"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert "Traceback" not in err

    def test_flow_syntax_error_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.flow"
        bad.write_text("main() : int = $$$;")
        code = main(["flow", str(bad)])
        assert code == 2
        assert capsys.readouterr().err.startswith("repro: error:")

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["--version"])
        assert exit_info.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestQueryCommand:
    def test_in_process_check(self, tmp_path, capsys):
        source = tmp_path / "p.c"
        source.write_text(VULNERABLE)
        code = main(["query", "check", str(source), "--property", "simple-privilege"])
        assert code == 0
        result = json.loads(capsys.readouterr().out)
        assert result["has_violation"] is True
        assert result["property"] == "simple-privilege"

    def test_in_process_flow_what_if(self, tmp_path, capsys):
        source = tmp_path / "p.flow"
        source.write_text(FIG11)
        code = main(
            [
                "query", "flow", str(source),
                "--flow-query", "A", "V",
                "--assume", "A:B",
            ]
        )
        assert code == 0
        result = json.loads(capsys.readouterr().out)
        assert result["flows"] is True
        assert result["assume"] == [["A", "B"]]

    def test_in_process_stats(self, capsys):
        assert main(["query", "stats"]) == 0
        result = json.loads(capsys.readouterr().out)
        assert "counters" in result and "solver" in result

    def test_check_requires_property(self, tmp_path, capsys):
        source = tmp_path / "p.c"
        source.write_text(VULNERABLE)
        assert main(["query", "check", str(source)]) == 2
        assert "property" in capsys.readouterr().err

    def test_missing_file_exits_2(self, capsys):
        assert main(["query", "check", "/no/such.c", "--property", "simple-privilege"]) == 2

    def test_unreachable_server_exits_2(self, tmp_path, capsys):
        source = tmp_path / "p.c"
        source.write_text(VULNERABLE)
        code = main(
            [
                "query", "check", str(source),
                "--property", "simple-privilege",
                "--connect", "127.0.0.1:1",  # nothing listens on port 1
            ]
        )
        assert code == 2
        assert "cannot reach" in capsys.readouterr().err


class TestQueryAgainstServer:
    def test_round_trip_over_tcp(self, tmp_path, capsys):
        from repro.service import AnalysisServer

        server = AnalysisServer(workers=2)
        host, port = server.start_tcp()
        try:
            source = tmp_path / "p.c"
            source.write_text(VULNERABLE)
            address = f"{host}:{port}"
            for _ in range(2):
                code = main(
                    [
                        "query", "check", str(source),
                        "--property", "simple-privilege",
                        "--connect", address,
                    ]
                )
                assert code == 0
            capsys.readouterr()  # drop the check output
            assert main(["query", "stats", "--connect", address]) == 0
            stats = json.loads(capsys.readouterr().out)
            assert stats["counters"]["cache.solve.hits"] >= 1
        finally:
            server.close()
