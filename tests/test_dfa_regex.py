"""Tests for the regex front end."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfa.regex import RegexSyntaxError, regex_to_dfa, regex_to_nfa


class TestBasicOperators:
    def test_literal(self):
        dfa = regex_to_dfa("abc")
        assert dfa.accepts("abc")
        assert not dfa.accepts("ab")
        assert not dfa.accepts("abcc")

    def test_alternation(self):
        dfa = regex_to_dfa("a|b|c")
        for sym in "abc":
            assert dfa.accepts(sym)
        assert not dfa.accepts("ab")

    def test_star(self):
        dfa = regex_to_dfa("a*")
        assert dfa.accepts("")
        assert dfa.accepts("aaaa")

    def test_plus(self):
        dfa = regex_to_dfa("a+")
        assert not dfa.accepts("")
        assert dfa.accepts("a")
        assert dfa.accepts("aaa")

    def test_optional(self):
        dfa = regex_to_dfa("ab?c")
        assert dfa.accepts("abc")
        assert dfa.accepts("ac")
        assert not dfa.accepts("abbc")

    def test_grouping(self):
        dfa = regex_to_dfa("(ab)+")
        assert dfa.accepts("ab")
        assert dfa.accepts("abab")
        assert not dfa.accepts("aba")

    def test_empty_pattern(self):
        dfa = regex_to_dfa("")
        assert dfa.accepts("")
        assert not dfa.accepts("a")

    def test_empty_alternative(self):
        dfa = regex_to_dfa("a|")
        assert dfa.accepts("a")
        assert dfa.accepts("")


class TestNamedSymbols:
    def test_angle_bracket_names(self):
        dfa = regex_to_dfa("<seteuid_zero><execl>")
        assert dfa.accepts(["seteuid_zero", "execl"])
        assert not dfa.accepts(["execl", "seteuid_zero"])

    def test_mixed_chars_and_names(self):
        dfa = regex_to_dfa("a<foo>*b")
        assert dfa.accepts(["a", "b"])
        assert dfa.accepts(["a", "foo", "foo", "b"])

    def test_escape(self):
        dfa = regex_to_dfa(r"\*a")
        assert dfa.accepts(["*", "a"])


class TestExtraAlphabet:
    def test_extra_symbols_rejected_but_present(self):
        dfa = regex_to_dfa("a", alphabet={"a", "z"})
        assert "z" in dfa.alphabet
        assert not dfa.accepts("z")


class TestErrors:
    @pytest.mark.parametrize(
        "pattern", ["(a", "a)", "*a", "a|*", "<", "<>", "a\\"]
    )
    def test_syntax_errors(self, pattern):
        with pytest.raises(RegexSyntaxError):
            regex_to_dfa(pattern)


@given(st.lists(st.sampled_from("ab"), max_size=6).map("".join))
@settings(max_examples=80, deadline=None)
def test_nfa_dfa_agree(word):
    pattern = "a(a|b)*b|b*"
    nfa = regex_to_nfa(pattern)
    dfa = regex_to_dfa(pattern)
    assert nfa.accepts(word) == dfa.accepts(word)
