"""Tests for the paper's machine gallery — sizes and semantics."""

import pytest

from repro.dfa.gallery import (
    FULL_PRIVILEGE_SYMBOLS,
    adversarial_machine,
    bit_vector_machine,
    bracket_machine,
    close_bracket,
    file_state_machine,
    full_privilege_machine,
    one_bit_machine,
    open_bracket,
    pair_machine,
    privilege_machine,
)
from repro.dfa.monoid import TransitionMonoid


class TestOneBit:
    def test_language(self):
        machine = one_bit_machine()
        assert machine.accepts(["g"])
        assert machine.accepts(["k", "g"])
        assert not machine.accepts(["g", "k"])
        assert not machine.accepts([])

    def test_monoid_is_three(self):
        assert TransitionMonoid(one_bit_machine()).size() == 3

    def test_custom_symbols(self):
        machine = one_bit_machine(gen=("g", 3), kill=("k", 3))
        assert machine.accepts([("g", 3)])


class TestBitVector:
    def test_states_and_monoid(self):
        machine = bit_vector_machine(3)
        assert machine.n_states == 8
        # product monoid: 3^n
        assert TransitionMonoid(machine).size() == 27

    def test_bit_zero_acceptance(self):
        machine = bit_vector_machine(2)
        assert machine.accepts([("g", 0)])
        assert not machine.accepts([("g", 1)])
        assert not machine.accepts([("g", 0), ("k", 0)])
        assert machine.accepts([("g", 0), ("k", 1)])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bit_vector_machine(0)


class TestAdversarial:
    @pytest.mark.parametrize("n,expected", [(1, 1), (2, 4), (3, 27), (4, 256)])
    def test_monoid_is_n_to_the_n(self, n, expected):
        # Section 4: rotate/swap/merge generate ALL |S|^|S| functions.
        assert TransitionMonoid(adversarial_machine(n)).size() == expected

    def test_forward_classes_stay_linear(self):
        monoid = TransitionMonoid(adversarial_machine(4))
        assert len(monoid.forward_classes()) <= 4


class TestPrivilege:
    def test_teaching_model(self):
        machine = privilege_machine()
        assert machine.n_states == 3
        assert machine.accepts(["seteuid_zero", "execl"])
        assert not machine.accepts(["seteuid_zero", "seteuid_nonzero", "execl"])

    def test_full_model_dimensions(self):
        # Paper: 11 states, 9 symbols, 58 representative functions.
        # Our reconstruction: 10 states, 9 symbols, 52 functions.
        machine = full_privilege_machine()
        assert machine.n_states == 10
        assert len(machine.alphabet) == 9
        assert set(FULL_PRIVILEGE_SYMBOLS) == set(machine.alphabet)
        size = TransitionMonoid(machine).size()
        assert 40 <= size <= 70
        assert size == 52

    def test_full_model_semantics(self):
        machine = full_privilege_machine()
        # setuid-root program exec'ing immediately: violation.
        assert machine.accepts(["exec"])
        # Dropping all privilege with setuid(getuid()) then exec: safe.
        assert not machine.accepts(["setuid_user", "exec"])
        # seteuid(user) alone keeps the saved uid root: system() errs.
        assert machine.accepts(["seteuid_user", "system"])
        # but a plain exec with euid dropped is fine
        assert not machine.accepts(["seteuid_user", "exec"])
        # privilege can be re-acquired through the saved uid
        assert machine.accepts(["seteuid_user", "seteuid_zero", "exec"])


class TestFileState:
    def test_double_operations_error(self):
        machine = file_state_machine()
        assert machine.accepts(["close"])  # close while closed
        assert machine.accepts(["open", "open"])
        assert not machine.accepts(["open", "close"])
        assert not machine.accepts(["open"])

    def test_monoid_small(self):
        assert TransitionMonoid(file_state_machine()).size() <= 8


class TestBracketMachines:
    def test_pair_machine_fig10(self):
        machine = pair_machine()
        # states: empty, inside-1, inside-2, dead
        assert machine.n_states == 4
        o1, c1 = open_bracket((1, "int")), close_bracket((1, "int"))
        o2, c2 = open_bracket((2, "int")), close_bracket((2, "int"))
        assert machine.accepts([])
        assert machine.accepts([o1, c1])
        assert machine.accepts([o1, c1, o2, c2])
        assert not machine.accepts([o1, c2])
        assert not machine.accepts([o1, o1, c1, c1])  # no renesting at depth 1
        assert not machine.accepts([o1])

    def test_depth_two_nesting(self):
        machine = bracket_machine(["a", "b"], depth=2)
        oa, ca = open_bracket("a"), close_bracket("a")
        ob, cb = open_bracket("b"), close_bracket("b")
        assert machine.accepts([oa, ob, cb, ca])
        assert not machine.accepts([oa, ob, ca, cb])  # crossing
        assert not machine.accepts([oa, ob, oa, ca, cb, ca])  # depth 3

    def test_can_nest_restriction(self):
        machine = bracket_machine(
            ["x", "y"], depth=2, can_nest=lambda top, k: top is None or k == "y"
        )
        ox, cx = open_bracket("x"), close_bracket("x")
        oy, cy = open_bracket("y"), close_bracket("y")
        assert machine.accepts([ox, oy, cy, cx])
        assert not machine.accepts([oy, ox, cx, cy])  # x cannot nest inside y


class TestBracketMachineSimulation:
    """The bracket machine must agree with a direct stack simulation."""

    @staticmethod
    def simulate(word, depth, kinds, can_nest=None):
        stack = []
        for direction, kind in word:
            if direction == "[":
                if len(stack) >= depth:
                    return None
                top = stack[-1] if stack else None
                if can_nest is not None and not can_nest(top, kind):
                    return None
                stack.append(kind)
            else:
                if not stack or stack[-1] != kind:
                    return None
                stack.pop()
        return stack

    def test_random_words_match_simulation(self):
        import itertools
        import random

        kinds = ["a", "b"]
        for depth in (1, 2, 3):
            machine = bracket_machine(kinds, depth)
            rng = random.Random(depth)
            symbols = [open_bracket(k) for k in kinds] + [
                close_bracket(k) for k in kinds
            ]
            for _ in range(300):
                word = [rng.choice(symbols) for _ in range(rng.randrange(7))]
                stack = self.simulate(word, depth, kinds)
                expected = stack == []
                assert machine.accepts(word) == expected, (depth, word)

    def test_with_nesting_restriction(self):
        import random

        kinds = ["x", "y"]

        def can_nest(top, kind):
            return top is None or (top == "x" and kind == "y")

        machine = bracket_machine(kinds, 2, can_nest)
        rng = random.Random(7)
        symbols = [open_bracket(k) for k in kinds] + [
            close_bracket(k) for k in kinds
        ]
        for _ in range(300):
            word = [rng.choice(symbols) for _ in range(rng.randrange(6))]
            stack = self.simulate(word, 2, kinds, can_nest)
            assert machine.accepts(word) == (stack == []), word
