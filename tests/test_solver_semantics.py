"""Semantic validation of the solver against word-level ground truth.

The solver works with representative functions; these tests rebuild the
same systems at the level of explicit *words* (the Section 2 semantics)
and verify the two views coincide: a constant reaches a variable with
representative function ``f`` iff it reaches it along some path whose
word is in ``f``'s congruence class (restricted to live classes — the
solver prunes necessarily-non-accepting annotations).
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.annotations import MonoidAlgebra
from repro.core.solver import Solver
from repro.core.terms import Variable, constant
from repro.dfa.automaton import DFA
from repro.dfa.gallery import one_bit_machine, privilege_machine
from repro.dfa.monoid import TransitionMonoid
from repro.dfa.regex import regex_to_dfa


def naive_dag_facts(machine, n_vars, edges, source_vars):
    """All (source, path-word class) pairs per variable, by enumerating
    every path of the DAG explicitly (edges go low → high index)."""
    monoid = TransitionMonoid(machine)
    facts = {v: set() for v in range(n_vars)}
    for src in source_vars:
        facts[src].add((src, monoid.identity))
    # Process in topological (index) order.
    for _ in range(n_vars):
        for u, v, word in edges:
            fn_word = monoid.of_word(word)
            for source, fn in list(facts[u]):
                combined = fn.then(fn_word)
                if monoid.is_live(combined):
                    facts[v].add((source, combined))
    return facts


def solver_dag_facts(machine, n_vars, edges, source_vars):
    algebra = MonoidAlgebra(machine)
    solver = Solver(algebra)
    variables = [Variable(f"v{i}") for i in range(n_vars)]
    consts = {i: constant(f"s{i}") for i in source_vars}
    for i, const in consts.items():
        solver.add(const, variables[i])
    for u, v, word in edges:
        solver.add(variables[u], variables[v], algebra.word(word))
    result = {v: set() for v in range(n_vars)}
    for v in range(n_vars):
        for src, ann in solver.lower_bounds(variables[v]):
            origin = int(src.constructor.name[1:])
            result[v].add((origin, ann))
    return result


MACHINES = {
    "one_bit": one_bit_machine(),
    "privilege": privilege_machine(),
    "regex": regex_to_dfa("a(b|c)*d"),
}


@st.composite
def dag_workloads(draw):
    machine_name = draw(st.sampled_from(sorted(MACHINES)))
    machine = MACHINES[machine_name]
    alphabet = sorted(machine.alphabet, key=repr)
    n_vars = draw(st.integers(min_value=2, max_value=6))
    n_edges = draw(st.integers(min_value=1, max_value=10))
    edges = []
    for _ in range(n_edges):
        u = draw(st.integers(min_value=0, max_value=n_vars - 2))
        v = draw(st.integers(min_value=u + 1, max_value=n_vars - 1))
        word = tuple(
            draw(st.lists(st.sampled_from(alphabet), max_size=2))
        )
        edges.append((u, v, word))
    sources = draw(
        st.sets(st.integers(min_value=0, max_value=n_vars - 1), min_size=1, max_size=2)
    )
    return machine, n_vars, edges, sorted(sources)


@given(dag_workloads())
@settings(max_examples=120, deadline=None)
def test_solver_matches_path_enumeration_on_dags(case):
    machine, n_vars, edges, sources = case
    expected = naive_dag_facts(machine, n_vars, edges, sources)
    actual = solver_dag_facts(machine, n_vars, edges, sources)
    for v in range(n_vars):
        assert actual[v] == expected[v], f"var {v}"


def test_cyclic_graph_matches_bounded_enumeration():
    """On a cyclic graph, enumerate paths up to a length at which the
    annotation classes must have saturated (|F| distinct functions)."""
    machine = one_bit_machine()
    monoid = TransitionMonoid(machine)
    edges = [(0, 1, ("g",)), (1, 2, ()), (2, 0, ("k",)), (1, 1, ("k",))]
    # Brute force: expand paths from var 0 until no new (var, fn) facts.
    facts = {0: {monoid.identity}, 1: set(), 2: set()}
    changed = True
    while changed:
        changed = False
        for u, v, word in edges:
            fn_word = monoid.of_word(word)
            for fn in list(facts[u]):
                combined = fn.then(fn_word)
                if combined not in facts[v]:
                    facts[v].add(combined)
                    changed = True
    algebra = MonoidAlgebra(machine)
    solver = Solver(algebra)
    variables = [Variable(f"v{i}") for i in range(3)]
    c = constant("c")
    solver.add(c, variables[0])
    for u, v, word in edges:
        solver.add(variables[u], variables[v], algebra.word(word))
    for v in range(3):
        got = {ann for src, ann in solver.lower_bounds(variables[v]) if src == c}
        assert got == facts[v]


def test_constructor_wrap_and_project_word_semantics():
    """c wrapped at annotation f1, traveling f2 inside the wrapper, then
    projected with f3 must carry the concatenated word f1·f2·f3."""
    machine = privilege_machine()
    algebra = MonoidAlgebra(machine)
    solver = Solver(algebra)
    from repro.core.terms import Constructor

    o = Constructor("o", 1)
    a, entry, exit_, out = (Variable(n) for n in ("A", "En", "Ex", "Out"))
    c = constant("c")
    solver.add(c, a, algebra.word(["seteuid_zero"]))
    solver.add(o(a), entry)
    solver.add(entry, exit_, algebra.word(["execl"]))
    solver.add(o.proj(1, exit_), out)
    expected = algebra.word(["seteuid_zero", "execl"])
    assert solver.has_lower(out, c, expected)
    assert algebra.is_accepting(expected)
