"""Tests for the MOPS-style PDA baseline: PDS construction and post*."""

from repro.cfg import build_cfg
from repro.modelcheck import file_state_property, simple_privilege_property
from repro.mops import MopsChecker, PushdownSystem, post_star
from repro.mops.poststar import EPS


class TestPostStarAlgorithm:
    def test_step_chain(self):
        pds = PushdownSystem()
        pds.initial = ("p", 0)
        pds.add_step("p", 0, "p", 1)
        pds.add_step("p", 1, "q", 2)
        automaton = post_star(pds)
        assert automaton.accepts("p", [0])
        assert automaton.accepts("p", [1])
        assert automaton.accepts("q", [2])
        assert not automaton.accepts("q", [0])

    def test_push_and_pop_match(self):
        # <p, 0> -> <p, 9 1>  (call: push), <p, 9> -> <p, ε> (return)
        pds = PushdownSystem()
        pds.initial = ("p", 0)
        pds.add_push("p", 0, "p", 9, 1)
        pds.add_pop("p", 9, "p")
        automaton = post_star(pds)
        assert automaton.accepts("p", [9, 1])  # inside the call
        assert automaton.accepts("p", [1])  # after the return

    def test_pop_changes_control_state(self):
        pds = PushdownSystem()
        pds.initial = ("p", 0)
        pds.add_push("p", 0, "p", 5, 1)
        pds.add_step("p", 5, "q", 6)
        pds.add_pop("q", 6, "q")
        automaton = post_star(pds)
        assert automaton.accepts("q", [1])
        assert not automaton.accepts("p", [6])

    def test_recursive_push(self):
        # <p,0> -> <p, 0 1>: unbounded stacks, still a regular set.
        pds = PushdownSystem()
        pds.initial = ("p", 0)
        pds.add_push("p", 0, "p", 0, 1)
        automaton = post_star(pds)
        assert automaton.accepts("p", [0])
        assert automaton.accepts("p", [0, 1])
        assert automaton.accepts("p", [0, 1, 1, 1])
        assert not automaton.accepts("p", [1, 0])

    def test_epsilon_combination_ordering(self):
        # A pop discovered before the transition it must combine with.
        pds = PushdownSystem()
        pds.initial = ("p", 0)
        pds.add_push("p", 0, "p", 2, 1)
        pds.add_pop("p", 2, "r")
        pds.add_step("r", 1, "s", 3)
        automaton = post_star(pds)
        assert automaton.accepts("s", [3])

    def test_tops_for(self):
        pds = PushdownSystem()
        pds.initial = ("p", 0)
        pds.add_step("p", 0, "err", 1)
        automaton = post_star(pds)
        assert automaton.tops_for("err") == {1}
        assert not automaton.tops_for("nope")


class TestMopsChecker:
    def test_sec63_violation(self):
        source = """
        int main() {
          seteuid(0);
          if (c) { seteuid(getuid()); } else { other(); }
          execl("/bin/sh", 0);
          return 0;
        }
        """
        checker = MopsChecker(build_cfg(source), simple_privilege_property())
        result = checker.check()
        assert result.has_violation
        assert checker.has_violation()
        assert result.error_nodes  # localized to CFG nodes

    def test_clean_program(self):
        source = """
        int main() { seteuid(0); seteuid(getuid()); execl("/x", 0); }
        """
        checker = MopsChecker(build_cfg(source), simple_privilege_property())
        assert not checker.check().has_violation

    def test_context_sensitive_matching(self):
        # Unprivileged call to helper must not pollute the privileged one.
        source = """
        void helper() { execl("/x", 0); }
        int main() { helper(); return 0; }
        """
        checker = MopsChecker(build_cfg(source), simple_privilege_property())
        assert not checker.check().has_violation

    def test_violation_with_pending_call_frames(self):
        source = """
        void inner() { execl("/x", 0); }
        void outer() { inner(); }
        int main() { seteuid(0); outer(); return 0; }
        """
        checker = MopsChecker(build_cfg(source), simple_privilege_property())
        assert checker.check().has_violation

    def test_parametric_product(self):
        source = """
        int main() {
          int a = open("x", 0);
          close(a);
          close(a);
          return 0;
        }
        """
        checker = MopsChecker(build_cfg(source), file_state_property())
        assert checker.check().has_violation

    def test_parametric_clean(self):
        source = """
        int main() {
          int a = open("x", 0);
          int b = open("y", 0);
          close(a);
          close(b);
          return 0;
        }
        """
        checker = MopsChecker(build_cfg(source), file_state_property())
        assert not checker.check().has_violation

    def test_counts(self):
        source = "int main() { seteuid(0); execl(\"/x\", 0); }"
        result = MopsChecker(build_cfg(source), simple_privilege_property()).check()
        assert result.control_states >= 2
        assert result.transitions > 0
