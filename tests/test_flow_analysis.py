"""Tests for the Section 7 flow analysis, its dual, and PN queries."""

import pytest

from repro.flow import DualFlowAnalysis, FlowAnalysis
from repro.flow.infer import FlowTypeError

FIG11 = """
pair(y : int) : b = (1@A, y@Y)@P;
main() : int = (pair^i(2@B)).2@V;
"""

TWO_SITES = """
id(y : int) : int = y@Y;
main() : int = (id^i(1@A)@RA, id^j(2@B)@RB)@P;
"""


class TestFig11:
    def setup_method(self):
        self.analysis = FlowAnalysis(FIG11)

    def test_b_flows_to_v(self):
        # The paper's Section 7.4 conclusion: B ⊆ V.
        assert self.analysis.flows("B", "V")

    def test_a_does_not_flow_to_v(self):
        # A is the first component; .2 projects the second.
        assert not self.analysis.flows("A", "V")

    def test_field_sensitivity_within_pair(self):
        assert not self.analysis.flows("A", "Y")
        assert not self.analysis.flows("Y", "A")

    def test_machine_is_fig10_shaped(self):
        # Single-level pair(int): 4 states (empty, in-1, in-2, dead).
        assert self.analysis.machine_states == 4

    def test_matched_excludes_unreturned_flow(self):
        # B reaches the formal parameter only through an unreturned
        # call — invisible to matched-only queries.
        assert not self.analysis.flows("B", "Y")

    def test_flow_pairs_matrix(self):
        pairs = self.analysis.flow_pairs()
        assert ("B", "V") in pairs
        assert ("A", "V") not in pairs


class TestPNQueries:
    def test_pn_sees_into_pending_calls(self):
        analysis = FlowAnalysis(FIG11, pn=True)
        assert analysis.flows("B", "Y")
        assert analysis.flows("B", "V")  # matched flows still present
        assert not analysis.flows("A", "V")  # field sensitivity kept

    def test_pn_lets_callee_values_escape(self):
        source = """
        make(y : int) : int = 1@Inner;
        main() : int = make^c(0)@Out;
        """
        matched = FlowAnalysis(source)
        pn = FlowAnalysis(source, pn=True)
        # Inner is created inside make: escapes only under PN.
        assert not matched.flows("Inner", "Out")
        assert pn.flows("Inner", "Out")


class TestContextSensitivity:
    def test_two_sites_do_not_conflate(self):
        analysis = FlowAnalysis(TWO_SITES)
        assert analysis.flows("A", "RA")
        assert analysis.flows("B", "RB")
        assert not analysis.flows("A", "RB")
        assert not analysis.flows("B", "RA")

    def test_polymorphic_recursion_terminates(self):
        source = """
        rec(y : int) : int = rec^r(y@In)@Out;
        main() : int = rec^c(5@S)@R;
        """
        analysis = FlowAnalysis(source, pn=True)
        assert analysis.flows("S", "In")
        # The recursion never returns a base value: nothing flows to R.
        assert not analysis.flows("S", "R")

    def test_recursion_with_base_case_returns(self):
        source = """
        f(y : int) : int = y@In;
        g(y : int) : int = f^inner(y)@Mid;
        main() : int = g^outer(3@S)@R;
        """
        analysis = FlowAnalysis(source)
        assert analysis.flows("S", "R")


class TestNonStructuralSubtyping:
    def test_type_var_bound_to_pair(self):
        # The declared return type is a bare variable; projection at the
        # call site still works because b is bound to the body's pair.
        analysis = FlowAnalysis(FIG11)
        assert analysis.flows("B", "V")

    def test_nested_pairs(self):
        source = """
        wrap(y : int) : (int * int) * int = ((1@A, y@Y)@Inner, 2@C)@Outer;
        main() : int = ((wrap^w(7@B)).1).2@V;
        """
        analysis = FlowAnalysis(source)
        assert analysis.flows("B", "V")
        assert not analysis.flows("A", "V")
        assert not analysis.flows("C", "V")

    def test_depth_two_machine(self):
        source = """
        main() : int = ((1@A, 2@B)@P, 3@C)@Q.1.2@V;
        """
        analysis = FlowAnalysis(source)
        assert analysis.flows("B", "V")
        assert not analysis.flows("A", "V")
        assert not analysis.flows("C", "V")


class TestTypeErrors:
    def test_project_non_pair(self):
        with pytest.raises(FlowTypeError):
            FlowAnalysis("main() : int = (1).1;")

    def test_unbound_variable(self):
        with pytest.raises(FlowTypeError):
            FlowAnalysis("main() : int = zzz;")

    def test_call_undefined(self):
        with pytest.raises(FlowTypeError):
            FlowAnalysis("main() : int = ghost^i(1);")

    def test_site_reuse_rejected(self):
        with pytest.raises(FlowTypeError):
            FlowAnalysis(
                """
                f(y : int) : int = y;
                g(y : int) : int = y;
                main() : int = (f^i(1), g^i(2)).1;
                """
            )

    def test_argument_to_paramless_function(self):
        with pytest.raises(FlowTypeError):
            FlowAnalysis(
                """
                k() : int = 1;
                main() : int = k^i(2);
                """
            )

    def test_unknown_label_query(self):
        analysis = FlowAnalysis(FIG11)
        with pytest.raises(KeyError):
            analysis.flows("Nope", "V")
        with pytest.raises(KeyError):
            analysis.flows("B", "Nope")


class TestDualAnalysis:
    def test_fig11_agrees_with_primal(self):
        dual = DualFlowAnalysis(FIG11)
        assert dual.flows("B", "V")
        assert not dual.flows("A", "V")

    def test_context_sensitivity(self):
        dual = DualFlowAnalysis(TWO_SITES)
        assert dual.flows("A", "RA")
        assert dual.flows("B", "RB")
        assert not dual.flows("A", "RB")
        assert not dual.flows("B", "RA")

    def test_recursive_sites_treated_monomorphically(self):
        source = """
        f(y : int) : int = f^r(y@In)@Out;
        main() : int = f^c(5@S)@R;
        """
        # Matched-only: S sits in a pending call frame, invisible.
        assert not DualFlowAnalysis(source).flows("S", "In")
        # Recursive site r gets the empty annotation; the analysis
        # terminates, and the PN (prefix) query sees S inside the call.
        assert DualFlowAnalysis(source, pn=True).flows("S", "In")

    def test_primal_dual_agree_on_matched_pairs(self):
        for source in (FIG11, TWO_SITES):
            primal = FlowAnalysis(source).flow_pairs()
            dual = DualFlowAnalysis(source).flow_pairs()
            assert primal == dual, source


class TestMachineScaling:
    def test_machine_grows_with_type_depth(self):
        shallow = FlowAnalysis("main() : int = (1@A, 2@B)@P.1@V;")
        deep = FlowAnalysis(
            "main() : int = (((1@A, 2)@P, 3)@Q, 4)@R.1.1.2@V;"
        )
        assert deep.machine_states > shallow.machine_states


class TestConditionals:
    """The language extension the paper mentions omitting (§7.1)."""

    def test_recursion_with_base_case(self):
        source = """
        count(y : int) : int = if y then count^r(y@Again) else y@Base;
        main() : int = count^c(5@S)@R;
        """
        analysis = FlowAnalysis(source)
        # The base case returns y, so S reaches R through the recursion.
        assert analysis.flows("S", "R")
        assert FlowAnalysis(source, pn=True).flows("S", "Base")
        assert DualFlowAnalysis(source).flows("S", "R")

    def test_branches_join(self):
        source = """
        main() : int = (if 1 then 2@A else 3@B)@J;
        """
        analysis = FlowAnalysis(source)
        assert analysis.flows("A", "J")
        assert analysis.flows("B", "J")
        assert not analysis.flows("A", "B")

    def test_condition_value_does_not_flow(self):
        source = """
        main() : int = (if 1@C then 2@A else 3)@J;
        """
        analysis = FlowAnalysis(source)
        assert not analysis.flows("C", "J")

    def test_pair_branches_stay_field_sensitive(self):
        source = """
        pick(y : int) : int * int = if y then (y@A1, 0)@P1 else (0, y@A2)@P2;
        main() : int = (pick^c(7@S)).1@First;
        """
        analysis = FlowAnalysis(source)
        assert analysis.flows("S", "First")
        assert not analysis.flows("A2", "First")

    def test_mismatched_branch_shapes_rejected(self):
        import pytest as _pytest

        from repro.flow.infer import FlowTypeError

        with _pytest.raises(FlowTypeError):
            FlowAnalysis("main() : int = if 1 then 2 else (3, 4);")

    def test_reserved_words(self):
        import pytest as _pytest

        from repro.flow.lang import FlowSyntaxError, parse_flow_program

        with _pytest.raises(FlowSyntaxError):
            parse_flow_program("main() : int = then;")


class TestLetBindings:
    def test_sharing_through_let(self):
        source = """
        main() : int = let x = (1@A, 2@B) in (x.1@First, x.2@Second).2@V;
        """
        analysis = FlowAnalysis(source)
        assert analysis.flows("A", "First")
        assert analysis.flows("B", "Second")
        assert analysis.flows("B", "V")
        assert not analysis.flows("A", "V")
        dual = DualFlowAnalysis(source)
        assert dual.flows("B", "V") and not dual.flows("A", "V")

    def test_shadowing(self):
        source = """
        f(y : int) : int = let y = 1@Inner in y@Out;
        main() : int = f^c(2@Arg)@R;
        """
        analysis = FlowAnalysis(source)
        assert analysis.flows("Inner", "Out")
        assert not analysis.flows("Arg", "Out")

    def test_let_in_dual_agrees(self):
        source = """
        main() : int = let p = (1@A, 2) in p.1@V;
        """
        assert FlowAnalysis(source).flow_pairs() == DualFlowAnalysis(
            source
        ).flow_pairs()

    def test_reserved_words(self):
        import pytest as _pytest

        from repro.flow.lang import FlowSyntaxError, parse_flow_program

        with _pytest.raises(FlowSyntaxError):
            parse_flow_program("main() : int = in;")
        with _pytest.raises(FlowSyntaxError):
            parse_flow_program("main() : int = let in = 1 in 2;")

    def test_nested_lets(self):
        source = """
        main() : int = let a = 1@A in let b = (a, 2) in b.1@V;
        """
        analysis = FlowAnalysis(source)
        assert analysis.flows("A", "V")


class TestPairTypedParameters:
    def test_function_taking_a_pair(self):
        source = """
        second(p : int * int) : int = p.2@Got;
        main() : int = second^c((1@A, 2@B))@R;
        """
        analysis = FlowAnalysis(source)
        assert analysis.flows("B", "R")
        assert not analysis.flows("A", "R")
        dual = DualFlowAnalysis(source)
        assert dual.flows("B", "R") and not dual.flows("A", "R")

    def test_pair_returned_through_two_calls(self):
        source = """
        make(y : int) : int * int = (y@In, 0)@P;
        pass_on(q : int * int) : int * int = q;
        main() : int = (pass_on^b(make^a(5@S))).1@V;
        """
        analysis = FlowAnalysis(source)
        assert analysis.flows("S", "V")

    def test_swap_function(self):
        source = """
        swap(p : int * int) : int * int = (p.2, p.1);
        main() : int = (swap^c((1@A, 2@B))).1@First;
        """
        analysis = FlowAnalysis(source)
        assert analysis.flows("B", "First")  # swapped
        assert not analysis.flows("A", "First")
        assert FlowAnalysis(source).flow_pairs() == DualFlowAnalysis(
            source
        ).flow_pairs()
