"""Tests for the AnnotatedConstraintSystem surface API and package exports."""

import repro
from repro import AnnotatedConstraintSystem
from repro.dfa.gallery import one_bit_machine, privilege_machine


class TestQuickstart:
    def test_readme_example(self):
        system = AnnotatedConstraintSystem(one_bit_machine())
        c = system.constant("c")
        X, Y = system.var("X"), system.var("Y")
        system.add(c, X, "g")
        system.add(X, Y)
        assert system.reaches(Y, c)

    def test_kill_erases(self):
        system = AnnotatedConstraintSystem(one_bit_machine())
        c = system.constant("c")
        X, Y = system.var("X"), system.var("Y")
        system.add(c, X, "g")
        system.add(X, Y, "k")
        assert not system.reaches(Y, c)


class TestSurfaceSyntax:
    def test_vars_interned(self):
        system = AnnotatedConstraintSystem(one_bit_machine())
        assert system.var("X") is system.var("X")

    def test_word_annotations(self):
        system = AnnotatedConstraintSystem(privilege_machine())
        ann = system.annotation(["seteuid_zero", "execl"])
        assert system.algebra.is_accepting(ann)

    def test_symbol_annotation(self):
        system = AnnotatedConstraintSystem(privilege_machine())
        assert system.annotation("execl") == system.algebra.symbol("execl")

    def test_none_is_identity(self):
        system = AnnotatedConstraintSystem(privilege_machine())
        assert system.annotation(None) == system.algebra.identity

    def test_target_state_query(self):
        machine = privilege_machine()
        system = AnnotatedConstraintSystem(machine)
        c = system.constant("c")
        X, Y = system.var("X"), system.var("Y")
        system.add(c, X)
        system.add(X, Y, "seteuid_zero")
        priv = machine.run(["seteuid_zero"])
        assert system.reaches(Y, c, target_states={priv})
        assert not system.reaches(Y, c)  # priv is not the accept state

    def test_witness(self):
        system = AnnotatedConstraintSystem(privilege_machine())
        c = system.constant("c")
        X, Y = system.var("X"), system.var("Y")
        system.add(c, X, info="seed")
        system.add(X, Y, "seteuid_zero", info="step")
        ann = system.algebra.symbol("seteuid_zero")
        assert system.witness(Y, c, ann) == ["seed", "step"]

    def test_terms_of(self):
        system = AnnotatedConstraintSystem(one_bit_machine())
        c = system.constant("c")
        X = system.var("X")
        system.add(c, X, "g")
        terms = system.terms_of(X)
        assert len(terms) == 1

    def test_reachability_cache_invalidation(self):
        system = AnnotatedConstraintSystem(one_bit_machine())
        c = system.constant("c")
        X, Y = system.var("X"), system.var("Y")
        system.add(c, X, "g")
        assert not system.reaches(Y, c)
        system.add(X, Y)  # cache must refresh
        assert system.reaches(Y, c)

    def test_consistency_flag(self):
        system = AnnotatedConstraintSystem(one_bit_machine())
        c, d = system.constant("c"), system.constant("d")
        X = system.var("X")
        system.add(c, X)
        assert system.is_consistent
        system.add(X, d)
        assert not system.is_consistent


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_docstring_example_runs(self):
        # Mirrors the module docstring quickstart.
        from repro import AnnotatedConstraintSystem as ACS
        from repro.dfa.gallery import one_bit_machine as m

        system = ACS(m())
        c = system.constant("c")
        X, Y = system.var("X"), system.var("Y")
        system.add(c, X, "g")
        system.add(X, Y)
        assert system.reaches(Y, c)
