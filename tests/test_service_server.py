"""Tests for the JSON-lines server: transports, isolation, concurrency."""

import json
import textwrap
import threading
import time

import pytest

from repro.service import (
    AnalysisEngine,
    AnalysisServer,
    ServiceClient,
    ServiceError,
)
from repro.service import protocol

VULNERABLE = textwrap.dedent(
    """
    int main() {
      seteuid(0);
      execl("/bin/sh");
      return 0;
    }
    """
)

FIG11 = """
pair(y : int) : b = (1@A, y@Y)@P;
main() : int = (pair^i(2@B)).2@V;
"""


def make_request(op, params=None, request_id=1, version=protocol.PROTOCOL_VERSION):
    return json.dumps(
        {"v": version, "id": request_id, "op": op, "params": params or {}}
    )


class TestProcessLine:
    """The transport-independent pipeline, driven directly."""

    def setup_method(self):
        self.server = AnalysisServer(workers=2)

    def teardown_method(self):
        self.server.close()

    def _send(self, line):
        return json.loads(self.server.process_line(line))

    def test_ping(self):
        reply = self._send(make_request("ping"))
        assert reply["ok"] and reply["result"]["pong"]

    def test_malformed_line(self):
        reply = self._send("this is not json")
        assert not reply["ok"]
        assert reply["error"]["code"] == protocol.E_MALFORMED

    def test_version_mismatch(self):
        reply = self._send(make_request("ping", version=99))
        assert not reply["ok"]
        assert reply["error"]["code"] == protocol.E_VERSION
        assert reply["id"] == 1  # correlated despite the error

    def test_fault_isolation_bad_program(self):
        reply = self._send(
            make_request(
                "check", {"program": "int main( {", "property": "simple-privilege"}
            )
        )
        assert not reply["ok"]
        assert reply["error"]["code"] == protocol.E_PARSE
        # the server survives and keeps answering
        assert self._send(make_request("ping"))["ok"]

    def test_fault_isolation_internal_error(self):
        # force an unexpected exception inside the engine
        def boom(op, params, budget=None):
            raise RuntimeError("kaboom")

        self.server.engine.dispatch = boom
        reply = self._send(make_request("ping"))
        assert not reply["ok"]
        assert reply["error"]["code"] == protocol.E_INTERNAL
        assert "kaboom" in reply["error"]["message"]

    def test_timeout(self):
        server = AnalysisServer(workers=1, timeout=0.05)
        slow = threading.Event()

        def sleepy(op, params, budget=None):
            slow.wait(2)
            return {}

        server.engine.dispatch = sleepy
        try:
            reply = json.loads(
                server.process_line(
                    make_request(
                        "check", {"program": "x", "property": "simple-privilege"}
                    )
                )
            )
            assert not reply["ok"]
            assert reply["error"]["code"] == protocol.E_TIMEOUT
        finally:
            slow.set()
            server.close()

    def test_shutdown_acknowledged_then_refuses(self):
        reply = self._send(make_request("shutdown"))
        assert reply["ok"] and reply["result"]["closing"]
        reply = self._send(make_request("ping"))
        assert not reply["ok"]
        assert reply["error"]["code"] == protocol.E_SHUTTING_DOWN


class TestStdioTransport:
    def test_serves_until_shutdown(self):
        import io

        lines = "\n".join(
            [
                make_request("ping", request_id=1),
                "",  # blank lines are skipped
                make_request("stats", request_id=2),
                make_request("shutdown", request_id=3),
                make_request("ping", request_id=4),  # never read
            ]
        )
        out = io.StringIO()
        AnalysisServer(workers=2).serve_stdio(io.StringIO(lines), out)
        replies = [json.loads(line) for line in out.getvalue().splitlines()]
        assert [r["id"] for r in replies] == [1, 2, 3]
        assert all(r["ok"] for r in replies)


class TestTCPTransport:
    def test_concurrent_mixed_requests_share_caches(self):
        """≥8 parallel mixed requests against one server; repeats hit cache."""
        engine = AnalysisEngine()
        server = AnalysisServer(engine, workers=4)
        host, port = server.start_tcp()
        errors: list = []

        def worker(kind):
            try:
                with ServiceClient(host, port) as client:
                    if kind == "check":
                        result = client.check(VULNERABLE, "simple-privilege")
                        assert result["has_violation"]
                    elif kind == "dataflow":
                        result = client.dataflow(VULNERABLE, ["seteuid"])
                        assert result["facts"] == ["seteuid"]
                    elif kind == "flow":
                        assert client.flow(FIG11, query=["B", "V"])["flows"]
                    elif kind == "whatif":
                        assert client.flow(
                            FIG11, query=["A", "V"], assume=[["A", "B"]]
                        )["flows"]
                    elif kind == "ping":
                        assert client.ping()["pong"]
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append((kind, exc))

        kinds = [
            "check", "check", "check",
            "dataflow", "dataflow",
            "flow", "flow",
            "whatif",
            "ping",
        ]
        threads = [threading.Thread(target=worker, args=(k,)) for k in kinds]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors, errors
            with ServiceClient(host, port) as client:
                stats = client.stats()
            counters = stats["counters"]
            # 3× check + 2× dataflow + 2/3× flow on the same keys: the
            # duplicates must have hit the solved-system cache.
            assert counters["cache.solve.hits"] >= 3
            # at most one solve per distinct (machine, program) key
            assert counters["cache.solve.misses"] <= 4
            assert counters["requests.total"] >= len(kinds)
            assert stats["solver"]["rollbacks"] >= 1  # the what-if
        finally:
            server.close()

    def test_pipelined_requests_on_one_connection(self):
        server = AnalysisServer(workers=4)
        host, port = server.start_tcp()
        try:
            with ServiceClient(host, port) as client:
                for i in range(5):
                    assert client.ping()["pong"]
                assert client.stats()["counters"]["requests.ping"] == 5
        finally:
            server.close()

    def test_shutdown_over_the_wire(self):
        server = AnalysisServer(workers=2)
        host, port = server.start_tcp()
        try:
            with ServiceClient(host, port) as client:
                assert client.shutdown()["closing"]
            assert server.wait(timeout=5)
            deadline = time.time() + 5
            while time.time() < deadline:
                try:
                    with ServiceClient(host, port) as client:
                        client.ping()
                except (OSError, ServiceError):
                    break  # listener gone or refusing: shutdown took
                time.sleep(0.05)
            else:  # pragma: no cover - failure path
                pytest.fail("server still accepting after shutdown")
        finally:
            server.close()

    def test_error_does_not_kill_connection(self):
        server = AnalysisServer(workers=2)
        host, port = server.start_tcp()
        try:
            with ServiceClient(host, port) as client:
                with pytest.raises(ServiceError) as err:
                    client.check("int main( {", "simple-privilege")
                assert err.value.code == protocol.E_PARSE
                assert client.ping()["pong"]  # same connection still good
        finally:
            server.close()
