"""Tests for the Section 8 annotation specification language."""

import pytest

from repro.dfa.gallery import PRIVILEGE_SPEC
from repro.dfa.spec import SpecSyntaxError, SymbolSpec, parse_spec


class TestParsing:
    def test_paper_example(self):
        spec = parse_spec(PRIVILEGE_SPEC)
        assert spec.states == ["Unpriv", "Priv", "Error"]
        assert spec.start == "Unpriv"
        assert spec.accepting == {"Error"}
        assert spec.transitions[("Unpriv", "seteuid_zero")] == "Priv"
        assert spec.transitions[("Priv", "execl")] == "Error"
        assert not spec.parametric_symbols

    def test_parametric_symbols(self):
        spec = parse_spec(
            """
            start state Closed : | open(x) -> Opened;
            state Opened : | close(x) -> Closed;
            accept state Error;
            """
        )
        assert spec.symbols["open"] == SymbolSpec("open", ("x",))
        assert spec.parametric_symbols == {"open", "close"}

    def test_multi_parameter_symbols(self):
        spec = parse_spec(
            """
            start accept state S : | bind(x, y) -> S;
            """
        )
        assert spec.symbols["bind"].params == ("x", "y")

    def test_comments_ignored(self):
        spec = parse_spec(
            """
            # a comment
            start state A : | s -> B;  // trailing
            accept state B;
            """
        )
        assert spec.states == ["A", "B"]

    def test_start_and_accept_combined(self):
        spec = parse_spec("start accept state Only;")
        assert spec.start == "Only"
        assert spec.accepting == {"Only"}


class TestCompilation:
    def test_self_loop_default(self):
        # Unspecified symbols self-loop: the property FSM monitors.
        spec = parse_spec(
            """
            start state A : | go -> B;
            accept state B : | back -> A;
            """
        )
        dfa = spec.to_dfa()
        assert dfa.accepts(["go"])
        assert dfa.accepts(["back", "go"])  # 'back' self-loops in A
        assert dfa.accepts(["go", "go"])  # 'go' self-loops in B
        assert not dfa.accepts(["go", "back"])

    def test_machine_is_complete(self):
        dfa = parse_spec(PRIVILEGE_SPEC).to_dfa()
        for state in range(dfa.n_states):
            for symbol in dfa.alphabet:
                assert (state, symbol) in dfa.delta

    def test_privilege_language(self):
        dfa = parse_spec(PRIVILEGE_SPEC).to_dfa()
        assert dfa.accepts(["seteuid_zero", "execl"])
        assert not dfa.accepts(["seteuid_zero", "seteuid_nonzero", "execl"])
        assert not dfa.accepts(["execl"])
        # error is a sink
        assert dfa.accepts(["seteuid_zero", "execl", "seteuid_nonzero"])


class TestErrors:
    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("state A;", "no start state"),
            ("start state A; start state B;", "multiple start"),
            ("start state A; state A;", "duplicate state"),
            ("start state A : | s -> Nowhere;", "unknown state"),
            ("start state A : | s -> A | s -> A;", "duplicate transition"),
            ("start state A : | s(x) -> A | s -> A;", "inconsistent"),
            ("start state A", "unexpected end"),
            ("start state A : s -> B;", "expected"),
        ],
    )
    def test_rejects(self, text, fragment):
        with pytest.raises(SpecSyntaxError) as err:
            parse_spec(text)
        assert fragment.split()[0] in str(err.value)

    def test_garbage_token(self):
        with pytest.raises(SpecSyntaxError):
            parse_spec("start state A $ ;")
