"""DispatchPool: preloaded worker engines, envelopes, and self-healing.

The pool's contracts: worker failures come back as *typed* wire errors
(never pickled tracebacks), per-worker metrics snapshots merge into one
aggregate that tells the truth across processes, and a worker killed
with SIGKILL costs the in-flight request an ``unavailable`` — not the
service its life — because the pool rebuilds itself.
"""

import os
import signal
import time

import pytest

from repro.service import protocol
from repro.service.dispatch import POOL_OPS, DispatchPool
from repro.service.engine import EngineError
from repro.service.metrics import Metrics

PROGRAM = 'int main() { int fd = open("a"); close(fd); close(fd); return 0; }'


@pytest.fixture(scope="module")
def pool():
    with DispatchPool(workers=1, preload=["full-privilege", "no-such"]) as p:
        yield p


class TestDispatch:
    def test_check_round_trip(self, pool):
        result = pool.execute(
            "check", {"program": PROGRAM, "property": "full-privilege"}
        )
        assert "violations" in result
        assert result["property"] == "full-privilege"

    def test_ping(self, pool):
        assert pool.execute("ping", {})["pong"] is True

    def test_unknown_property_is_typed(self, pool):
        with pytest.raises(EngineError) as err:
            pool.execute("check", {"program": PROGRAM, "property": "bogus"})
        assert err.value.code == protocol.E_UNSUPPORTED

    def test_parse_error_is_typed(self, pool):
        with pytest.raises(EngineError) as err:
            pool.execute(
                "check", {"program": "int main( {", "property": "full-privilege"}
            )
        assert err.value.code  # typed, whatever the engine chose

    def test_patch_refused(self, pool):
        """Patches mutate journaled sessions; the parent is the writer."""
        assert "patch" not in POOL_OPS
        with pytest.raises(EngineError) as err:
            pool.execute("patch", {"program": PROGRAM, "property": "full-privilege"})
        assert err.value.code == protocol.E_BAD_REQUEST

    def test_worker_deadline_enforced(self, pool):
        with pytest.raises(EngineError) as err:
            pool.execute(
                "check",
                {
                    "program": PROGRAM,
                    "property": "full-privilege",
                    "deadline": time.time() - 1.0,
                },
            )
        assert err.value.code == protocol.E_DEADLINE

    def test_aggregate_metrics_reports_worker_truth(self, pool):
        pool.execute("check", {"program": PROGRAM, "property": "full-privilege"})
        merged = pool.aggregate_metrics()
        counters = merged["counters"]
        # The worker preloaded one real property and failed one fake.
        assert counters.get("preload.properties", 0) >= 1
        assert counters.get("preload.failed", 0) >= 1
        # Parent-side pool counters ride the same snapshot.
        assert counters.get("pool.dispatched", 0) >= 1
        base = Metrics()
        base.incr("pool.dispatched", 5)
        with_base = pool.aggregate_metrics(base)
        assert (
            with_base["counters"]["pool.dispatched"]
            == counters["pool.dispatched"] + 5
        )

    def test_remerge_replaces_not_accumulates(self, pool):
        """Aggregating twice must not double-count worker counters."""
        once = pool.aggregate_metrics()["counters"]
        twice = pool.aggregate_metrics()["counters"]
        assert once == twice

    def test_stats_shape(self, pool):
        stats = pool.stats()
        assert stats["workers"] == 1
        assert stats["preload"] == ["full-privilege", "no-such"]
        assert isinstance(stats["pids"], list)


class TestMetricsMerge:
    def test_counters_and_timers_add_gauges_sum(self):
        m = Metrics()
        m.incr("requests.total", 2)
        m.add_time("solve", 1.0)
        m.set_gauge("requests.inflight", 3)
        m.merge(
            {
                "counters": {"requests.total": 5, "new": 1},
                "gauges": {"requests.inflight": 2},
                "timers": {"solve": {"count": 4, "seconds": 2.5}},
            }
        )
        snap = m.snapshot()
        assert snap["counters"]["requests.total"] == 7
        assert snap["counters"]["new"] == 1
        assert snap["gauges"]["requests.inflight"] == 5
        assert snap["timers"]["solve"] == {"count": 5, "seconds": 3.5}

    def test_malformed_sections_ignored(self):
        m = Metrics()
        m.incr("kept")
        m.merge(
            {
                "counters": {"bad": "nope"},
                "gauges": "not-a-dict",
                "timers": {"t": "not-a-dict", "u": {"count": "x", "seconds": 1}},
            }
        )
        snap = m.snapshot()
        assert snap["counters"] == {"kept": 1}
        assert snap["timers"] == {}


class TestSelfHealing:
    def test_killed_worker_yields_unavailable_and_pool_rebuilds(self):
        with DispatchPool(workers=1, preload=["full-privilege"]) as pool:
            pool.execute(
                "check", {"program": PROGRAM, "property": "full-privilege"}
            )
            (pid,) = pool.worker_pids()
            os.kill(pid, signal.SIGKILL)
            # The dead worker surfaces as a typed retryable refusal on
            # some request soon after — not a traceback, not a hang.
            saw_unavailable = False
            deadline = time.time() + 60
            while time.time() < deadline:
                try:
                    pool.execute(
                        "check",
                        {"program": PROGRAM, "property": "full-privilege"},
                    )
                    if saw_unavailable:
                        break  # healed: a request succeeded post-refusal
                except EngineError as err:
                    assert err.code == protocol.E_UNAVAILABLE
                    saw_unavailable = True
                time.sleep(0.1)
            assert saw_unavailable, "SIGKILL never surfaced as unavailable"
            assert pool.rebuilds >= 1
            assert pool.worker_pids() != [pid]

    def test_closed_pool_refuses(self):
        pool = DispatchPool(workers=1)
        pool.shutdown()
        with pytest.raises(EngineError) as err:
            pool.execute("ping", {})
        assert err.value.code == protocol.E_SHUTTING_DOWN


class TestPreloadSpec:
    """Parent-resolved preload: one compile per fingerprint, shm attach."""

    def test_spec_resolves_fingerprints_once(self):
        from repro.service.dispatch import _resolve_preload

        spec = _resolve_preload(("full-privilege", "full-privilege"))
        assert len(spec) == 2
        (n1, fp1, arena1), (n2, fp2, arena2) = spec
        assert n1 == n2 == "full-privilege"
        assert fp1 == fp2 and fp1 is not None
        # The second name reuses the first's published arena.
        assert arena1 == arena2

    def test_unknown_names_ride_through_unresolved(self):
        from repro.service.dispatch import _resolve_preload

        spec = _resolve_preload(("no-such-property",))
        assert spec == (("no-such-property", None, None),)

    def test_duplicate_fingerprints_warm_one_algebra(self):
        """Satellite: ``--preload`` with repeated machines must not
        recompile — the worker counts a dedupe, not a second warm."""
        import repro.service.dispatch as dispatch
        from repro.core import shm

        spec = dispatch._resolve_preload(
            ("full-privilege", "full-privilege", "no-such")
        )
        saved_engine = dispatch._WORKER_ENGINE
        saved_handlers = {
            signum: signal.getsignal(signum)
            for signum in (signal.SIGINT, signal.SIGTERM)
        }
        try:
            dispatch._init_worker(spec, 8, None, 1, "greedy")
            metrics = dispatch._WORKER_ENGINE.metrics
            assert metrics.get("preload.properties") == 1
            assert metrics.get("preload.deduped") == 1
            assert metrics.get("preload.failed") == 1  # the unknown name
            if shm.shm_available():
                assert metrics.get("preload.shm_attached") == 1
        finally:
            dispatch._WORKER_ENGINE = saved_engine
            for signum, handler in saved_handlers.items():
                signal.signal(signum, handler)

    def test_pool_stats_report_shm_and_partition(self):
        with DispatchPool(
            workers=1, preload=["full-privilege"], partition="roundrobin"
        ) as pool:
            stats = pool.stats()
            assert stats["partition"] == "roundrobin"
            assert "shm" in stats
            assert isinstance(stats["shm"]["available"], bool)
            if stats["shm"]["available"]:
                assert len(stats["shm"]["arenas"]) == 1

    def test_preloaded_worker_answers_with_attached_algebra(self):
        """End to end: a worker warmed via the arena solves correctly."""
        with DispatchPool(workers=1, preload=["full-privilege"]) as pool:
            result = pool.execute(
                "check", {"program": PROGRAM, "property": "full-privilege"}
            )
            assert result["property"] == "full-privilege"
            merged = pool.aggregate_metrics()
            counters = merged.get("counters", {})
            from repro.core import shm

            if shm.shm_available():
                assert counters.get("preload.shm_attached", 0) >= 1
