"""Tests for the Section 7 source-language parser."""

import pytest

from repro.flow import lang
from repro.flow.lang import (
    Def,
    FlowSyntaxError,
    Inst,
    Labeled,
    Lit,
    Pair,
    Proj,
    TFun,
    TInt,
    TPair,
    TVar,
    Var,
    parse_flow_program,
)


class TestTypes:
    def parse_type(self, text):
        program = parse_flow_program(f"f(x : {text}) : int = 0;")
        return program.function("f").param_type

    def test_int(self):
        assert self.parse_type("int") == TInt()

    def test_type_var(self):
        assert self.parse_type("alpha") == TVar("alpha")

    def test_pair(self):
        assert self.parse_type("int * int") == TPair(TInt(), TInt())

    def test_pair_left_assoc(self):
        assert self.parse_type("int * int * int") == TPair(
            TPair(TInt(), TInt()), TInt()
        )

    def test_parenthesized(self):
        assert self.parse_type("int * (int * int)") == TPair(
            TInt(), TPair(TInt(), TInt())
        )

    def test_function_type(self):
        assert self.parse_type("int -> int") == TFun(TInt(), TInt())


class TestExpressions:
    def body(self, text):
        return parse_flow_program(f"main() : int = {text};").function("main").body

    def test_literal(self):
        assert self.body("42") == Lit(42)

    def test_variable(self):
        assert self.body("x") == Var("x")

    def test_pair_and_projection(self):
        expr = self.body("(1, 2).1")
        assert expr == Proj(Pair(Lit(1), Lit(2)), 1)

    def test_label_annotation(self):
        expr = self.body("1@A")
        assert expr == Labeled(Lit(1), "A")

    def test_instantiation(self):
        expr = self.body("f^i(2)")
        assert expr == Inst("f", "i", Lit(2))

    def test_nested(self):
        expr = self.body("(f^i(2@B)).2@V")
        assert expr == Labeled(Proj(Inst("f", "i", Labeled(Lit(2), "B")), 2), "V")

    def test_projection_index_must_be_12(self):
        with pytest.raises(FlowSyntaxError):
            self.body("(1, 2).3")

    def test_parenthesized_expr(self):
        assert self.body("((1))") == Lit(1)


class TestPrograms:
    def test_fig11(self):
        program = parse_flow_program(
            """
            pair(y : int) : b = (1@A, y@Y)@P;
            main() : int = (pair^i(2@B)).2@V;
            """
        )
        assert [d.name for d in program.defs] == ["pair", "main"]
        pair = program.function("pair")
        assert pair.param == "y"
        assert pair.return_type == TVar("b")

    def test_paramless_def(self):
        program = parse_flow_program("main() : int = 1;")
        assert program.function("main").param is None

    def test_comments(self):
        program = parse_flow_program("# header\nmain() : int = 1; // tail")
        assert program.function("main").body == Lit(1)

    def test_duplicate_function_rejected(self):
        with pytest.raises(FlowSyntaxError):
            parse_flow_program("f() : int = 1; f() : int = 2;")

    @pytest.mark.parametrize(
        "text",
        [
            "main() : int = ;",
            "main() : int = 1",
            "main() int = 1;",
            "main() : int = f^(1);",
            "main() : int = (1, 2, 3);",
        ],
    )
    def test_syntax_errors(self, text):
        with pytest.raises(FlowSyntaxError):
            parse_flow_program(text)

    def test_unknown_function_lookup(self):
        program = parse_flow_program("main() : int = 1;")
        with pytest.raises(KeyError):
            program.function("ghost")
