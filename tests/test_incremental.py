"""Tests for differential re-solving (repro.incremental).

The load-bearing property throughout: after ``DeltaSolver.apply`` the
solver holds *exactly* the canonical solved form a cold solve of the
edited constraint set would produce — same facts modulo the full
identity-cycle quotient, same collapse classes, same query answers.
The hypothesis suite asserts it across algebras, cycle-elimination
settings, and randomized edit streams; the unit tests pin down the
individual mechanisms (ledger, demotion, provenance hygiene) and the
typed rejections.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.annotations import CompiledMonoidAlgebra, MonoidAlgebra
from repro.core.budget import Budget
from repro.core.errors import SolverBudgetExceeded
from repro.core.persist import dump_solver, load_solver
from repro.core.solver import Solver
from repro.core.terms import Variable, constant
from repro.incremental import (
    DeltaSolver,
    Patch,
    PatchStateError,
    ProvenanceError,
    StableCheck,
    UnknownConstraintError,
    UnsupportedConstraintError,
    diff_programs,
    stable_encode,
)
from repro.cfg import build_cfg
from repro.modelcheck.properties import (
    file_state_property,
    simple_privilege_property,
)
from repro.synth import PackageSpec, edit_stream

PROP = simple_privilege_property()


def canonical(solver):
    return set(solver.canonical_facts())


def cold_check(source, compiled=True, cycle_elim=True):
    return StableCheck(
        source, PROP, compiled=compiled, cycle_elim=cycle_elim
    )


def stored_facts(solver):
    for var, bucket in solver._lower.items():
        for term, ann in bucket:
            yield ("lower", var, term, ann)
    for var, bucket in solver._upper.items():
        for term, ann in bucket:
            yield ("upper", var, term, ann)
    for var, bucket in solver._succ.items():
        for dst, ann in bucket:
            yield ("edge", var, dst, ann)
    for var, bucket in solver._proj.items():
        for key in bucket:
            yield ("proj", var, *key)


def audit_reasons(solver):
    """Every recorded reason must describe a fact that is still stored,
    keyed at a current union-find root (no loser-keyed strays).

    Like fact storage itself, an edge reason's *dst* slot may keep a
    merged-away spelling — only the primary (bucket-owner) slot is kept
    canonical — so the store comparison goes through
    ``_canonical_fact``.
    """
    canon = solver._canonical_fact
    find = solver.find
    stored = {canon(fact) for fact in stored_facts(solver)}
    for key in solver._reasons:
        assert find(key[1]) == key[1], f"loser-keyed reason survives: {key!r}"
        assert canon(key) in stored, f"reason for absent fact: {key!r}"


SMALL = PackageSpec("inc-small", 260, 6, seed=2)
MEDIUM = PackageSpec("inc-medium", 900, 12, seed=8)


class TestPatchEquivalence:
    """Patched solved form == cold solved form (unit cases)."""

    def test_single_edit_matches_cold(self):
        steps = list(edit_stream(MEDIUM, 1))
        live = cold_check(steps[0].source)
        outcome = live.apply_source(steps[1].source)
        cold = cold_check(steps[1].source)
        assert canonical(live.solver) == canonical(cold.solver)
        assert outcome.stats.added_constraints == len(outcome.patch.adds)
        assert live.has_violation() == cold.has_violation()

    def test_edit_then_revert_roundtrip(self):
        steps = list(edit_stream(MEDIUM, 1))
        live = cold_check(steps[0].source)
        before = canonical(live.solver)
        live.apply_source(steps[1].source)
        live.apply_source(steps[0].source)
        assert canonical(live.solver) == before

    def test_add_only_patch(self):
        solver = Solver(record_reasons=True)
        c = constant("c")
        x, y = Variable("X"), Variable("Y")
        solver.add(c, x)
        delta = DeltaSolver(solver, [(c, x, None, None)])
        delta.patch(adds=[(x, y, None, None)])
        cold = Solver()
        cold.add(c, x)
        cold.add(x, y)
        assert canonical(solver) == canonical(cold)

    def test_retract_only_patch(self):
        solver = Solver(record_reasons=True)
        c = constant("c")
        x, y = Variable("X"), Variable("Y")
        given = [(c, x, None, None), (x, y, None, None)]
        solver.add_many(given)
        identity = solver.algebra.identity
        delta = DeltaSolver(solver, given)
        delta.patch(retracts=[(x, y, identity)])
        cold = Solver()
        cold.add(c, x)
        assert canonical(solver) == canonical(cold)

    def test_empty_patch_is_noop(self):
        steps = list(edit_stream(SMALL, 0))
        live = cold_check(steps[0].source)
        before = canonical(live.solver)
        stats = live.delta.apply(Patch((), ()))
        assert canonical(live.solver) == before
        assert stats.facts_retracted == 0
        assert stats.demotions == 0

    def test_duplicate_given_retract_keeps_fact(self):
        # The ledger is a multiset: retracting one of two identical
        # givens must keep the fact derivable.
        solver = Solver(record_reasons=True)
        c = constant("c")
        x = Variable("X")
        given = [(c, x, None, None), (c, x, None, None)]
        solver.add_many(given)
        identity = solver.algebra.identity
        delta = DeltaSolver(solver, given)
        delta.patch(retracts=[(c, x, identity)])
        assert solver.has_lower(x, c, identity)
        delta.patch(retracts=[(c, x, identity)])
        assert not list(solver.lower_bounds(x))

    def test_patch_stats_counters_flow_to_solver_stats(self):
        steps = list(edit_stream(MEDIUM, 1))
        live = cold_check(steps[0].source)
        outcome = live.apply_source(steps[1].source)
        stats = outcome.stats
        assert stats.retracted_constraints > 0
        assert stats.facts_retracted > 0
        assert live.solver.stats.facts_retracted == stats.facts_retracted
        assert live.solver.stats.facts_rederived == stats.facts_rederived
        assert live.solver.stats.cone_size >= stats.facts_retracted
        payload = stats.as_dict()
        assert set(payload) == {
            "added_constraints",
            "retracted_constraints",
            "facts_retracted",
            "facts_rederived",
            "demotions",
        }


class TestCycleDemotion:
    """Retractions that break identity cycles dissolve merged classes."""

    def test_retract_cycle_edge_demotes(self):
        solver = Solver(record_reasons=True)
        c = constant("c")
        x, y, z = Variable("X"), Variable("Y"), Variable("Z")
        given = [
            (c, x, None, None),
            (x, y, None, None),
            (y, x, None, None),
            (y, z, None, None),
        ]
        solver.add_many(given)
        identity = solver.algebra.identity
        assert solver.find(x) == solver.find(y)  # merged
        delta = DeltaSolver(solver, given)
        stats = delta.patch(retracts=[(y, x, identity)])
        assert stats.demotions == 1
        assert solver.find(x) != solver.find(y)
        cold = Solver()
        cold.add_many([g for g in given if g[:2] != (y, x)])
        assert canonical(solver) == canonical(cold)

    def test_remerge_when_cycle_restored(self):
        solver = Solver(record_reasons=True)
        c = constant("c")
        x, y = Variable("X"), Variable("Y")
        given = [(c, x, None, None), (x, y, None, None), (y, x, None, None)]
        solver.add_many(given)
        identity = solver.algebra.identity
        delta = DeltaSolver(solver, given)
        delta.patch(retracts=[(y, x, identity)])
        delta.patch(adds=[(y, x, None, None)])
        assert solver.find(x) == solver.find(y)
        cold = Solver()
        cold.add_many(given)
        assert canonical(solver) == canonical(cold)

    def test_demotion_deletes_every_stale_spelling(self):
        # Regression: a merged loop class can store *several* spellings
        # of one canonical edge (same src, dsts all in the class).  The
        # demotion cone must delete them all — resolving each to the
        # first variant hit used to collapse them into one key, so the
        # survivor resurrected as a distinct stale fact once the class
        # split.  Found by hypothesis at exactly this seed.
        spec = PackageSpec("inc-prop", 220, 5, seed=8)
        steps = list(edit_stream(spec, 2))
        live = StableCheck(
            steps[0].source, PROP, compiled=False, cycle_elim=True
        )
        for step in steps[1:]:
            live.apply_source(step.source)
        cold = cold_check(steps[-1].source, compiled=False, cycle_elim=True)
        assert canonical(live.solver) == canonical(cold.solver)


class TestRejections:
    def test_no_reasons_rejected(self):
        solver = Solver(record_reasons=False)
        c = constant("c")
        x = Variable("X")
        solver.add(c, x)
        with pytest.raises(ProvenanceError):
            DeltaSolver(solver, [(c, x, None, None)])

    def test_warm_loaded_snapshot_rejected(self):
        solver = Solver(record_reasons=True)
        c = constant("c")
        x = Variable("X")
        solver.add(c, x)
        loaded = load_solver(dump_solver(solver))
        with pytest.raises(ProvenanceError):
            DeltaSolver(loaded, [(c, x, None, None)])

    def test_open_journal_rejected(self):
        solver = Solver(record_reasons=True)
        c = constant("c")
        x = Variable("X")
        given = [(c, x, None, None)]
        solver.add_many(given)
        delta = DeltaSolver(solver, given)
        solver.mark()
        with pytest.raises(PatchStateError):
            delta.patch(adds=[(x, Variable("Y"), None, None)])
        solver.rollback()
        delta.patch(adds=[(x, Variable("Y"), None, None)])  # fine again

    def test_unknown_retraction_rejected(self):
        solver = Solver(record_reasons=True)
        c = constant("c")
        x = Variable("X")
        given = [(c, x, None, None)]
        solver.add_many(given)
        delta = DeltaSolver(solver, given)
        identity = solver.algebra.identity
        with pytest.raises(UnknownConstraintError):
            delta.patch(retracts=[(x, Variable("Y"), identity)])

    def test_parametric_property_rejected_by_encoder(self):
        prop = file_state_property()
        if not prop.parametric_symbols:
            pytest.skip("file-state property is not parametric here")
        from repro.core.parametric import ParametricAlgebra

        algebra = ParametricAlgebra(prop.machine, prop.parametric_symbols)
        cfg = build_cfg("int main() { int fd = open(); close(fd); return 0; }")
        with pytest.raises(UnsupportedConstraintError):
            stable_encode(cfg, prop, algebra)


class TestProvenanceHygiene:
    """mark()/rollback() and cycle merges must not strand reasons."""

    def test_reasons_match_store_after_rollback(self):
        steps = list(edit_stream(SMALL, 0))
        live = cold_check(steps[0].source)
        solver = live.solver
        snapshot = dict(solver._reasons)
        solver.mark()
        solver.add(constant("c"), Variable("S@fn_1#1"))
        solver.rollback()
        audit_reasons(solver)
        assert solver._reasons == snapshot

    def test_reasons_restored_across_cycle_merge_rollback(self):
        solver = Solver(record_reasons=True)
        c = constant("c")
        x, y = Variable("X"), Variable("Y")
        solver.add(c, x)
        solver.add(x, y)
        snapshot = dict(solver._reasons)
        solver.mark()
        solver.add(y, x)  # merges {X, Y} inside the epoch
        assert solver.find(x) == solver.find(y)
        solver.rollback()
        assert solver.find(x) != solver.find(y)
        assert solver._reasons == snapshot
        audit_reasons(solver)

    def test_no_stale_reasons_after_merge(self):
        solver = Solver(record_reasons=True)
        c = constant("c")
        x, y, z = Variable("X"), Variable("Y"), Variable("Z")
        solver.add(c, x)
        solver.add(x, y)
        solver.add(y, z)
        solver.add(z, x)  # three-way merge
        assert solver.find(x) == solver.find(z)
        audit_reasons(solver)

    def test_audit_holds_across_patches(self):
        steps = list(edit_stream(MEDIUM, 3))
        live = cold_check(steps[0].source)
        for step in steps[1:]:
            live.apply_source(step.source)
            audit_reasons(live.solver)


# -- hypothesis: patch == cold across the configuration space ----------------

edit_specs = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # package seed
    st.integers(min_value=1, max_value=3),  # number of edits
    st.booleans(),  # compiled algebra
    st.booleans(),  # cycle elimination
)


@settings(max_examples=12, deadline=None)
@given(edit_specs)
def test_patch_reaches_cold_solved_form(params):
    seed, n_edits, compiled, cycle_elim = params
    spec = PackageSpec("inc-prop", 220, 5, seed=seed)
    steps = list(edit_stream(spec, n_edits))
    live = cold_check(steps[0].source, compiled=compiled, cycle_elim=cycle_elim)
    for step in steps[1:]:
        live.apply_source(step.source)
    cold = cold_check(
        steps[-1].source, compiled=compiled, cycle_elim=cycle_elim
    )
    assert canonical(live.solver) == canonical(cold.solver)
    assert live.has_violation() == cold.has_violation()


@settings(max_examples=6, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=30, max_value=400),
)
def test_patch_after_resume(seed, max_steps):
    """A budget-interrupted solve, resumed to the fixpoint, patches to
    the same canonical form as an uninterrupted cold solve."""
    spec = PackageSpec("inc-resume", 220, 5, seed=seed)
    steps = list(edit_stream(spec, 1))
    algebra = CompiledMonoidAlgebra(PROP.machine)
    batch, _ = stable_encode(build_cfg(steps[0].source), PROP, algebra)
    solver = Solver(
        algebra, record_reasons=True, budget=Budget(max_steps=max_steps)
    )
    try:
        solver.add_many(batch)
    except SolverBudgetExceeded:
        pass
    solver.budget = None
    solver.resume()
    delta = DeltaSolver(solver, batch)
    patch = diff_programs(steps[0].source, steps[1].source, PROP, algebra)
    delta.apply(patch)
    cold = cold_check(steps[1].source)
    assert canonical(solver) == canonical(cold.solver)


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_object_and_compiled_algebras_agree_after_patch(seed):
    spec = PackageSpec("inc-alg", 220, 5, seed=seed)
    steps = list(edit_stream(spec, 1))
    compiled = cold_check(steps[0].source, compiled=True)
    objectal = StableCheck(
        steps[0].source, PROP, algebra=MonoidAlgebra(PROP.machine)
    )
    compiled.apply_source(steps[1].source)
    objectal.apply_source(steps[1].source)
    assert compiled.has_violation() == objectal.has_violation()
    assert compiled.solver.fact_count() == objectal.solver.fact_count()
