"""Crash-recovery tests: journal replay equivalence and quarantine.

Three layers:

* a Hypothesis suite proving recovery-then-patch reaches the same
  canonical solved form (and verdict) as cold solves across the solver
  feature matrix — object/compiled/flat cores, cycle elimination on and
  off;
* a kill-and-restart engine test for **every** quarantine slug,
  crafting the exact on-disk damage each slug guards against and
  asserting the typed cold fallback;
* a subprocess test that ``kill -9``s a live ``repro serve`` process
  mid-patch-stream and proves the restarted service restores the hot
  session exactly (patching from the last acknowledged base succeeds
  and agrees with a cold solve).

``REPRO_FAULT_SEED`` varies the synthetic workloads; CI runs this file
under several seeds.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.cfg.builder import build_cfg
from repro.core.persist import (
    JOURNAL_MAGIC,
    frame_journal_record,
    write_solver_snapshot,
)
from repro.incremental import StableCheck
from repro.modelcheck import AnnotatedChecker, simple_privilege_property
from repro.service import (
    AnalysisEngine,
    QUARANTINE_SLUGS,
    ServiceClient,
    SessionJournal,
    program_hash,
)
from repro.service.journal import JournalLineage
from repro.synth import PackageSpec, edit_stream
from repro.testing import FaultInjector

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

PROP_NAME = "simple-privilege"

P1 = "void main() {\n  seteuid(0);\n  execl();\n  seteuid(getuid());\n}\n"
P2 = "void main() {\n  seteuid(0);\n  seteuid(getuid());\n  execl();\n}\n"
P3 = "void main() {\n  seteuid(getuid());\n  execl();\n}\n"


def cold_result(source):
    engine = AnalysisEngine()
    return engine.patch(source, PROP_NAME)


def assert_same_verdict(result, expected):
    for field in ("has_violation", "violations", "facts"):
        assert result[field] == expected[field]


# ---------------------------------------------------------------------------
# recovery-then-patch ≡ cold solve, across the feature matrix
# ---------------------------------------------------------------------------


class TestRecoveryEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_edits=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=6, deadline=None)
    def test_recovered_session_matches_cold_solves(self, seed, n_edits):
        spec = PackageSpec("recov", 160, 5, seed=seed + SEED * 7919)
        steps = list(edit_stream(spec, n_edits + 1))
        final = steps[-1].source
        with tempfile.TemporaryDirectory() as d:
            engine = AnalysisEngine(journal_dir=d)
            r = engine.patch(steps[0].source, PROP_NAME)
            for step in steps[1:-1]:
                r = engine.patch(step.source, PROP_NAME, base=r["version"])
            engine.close()  # crash point: journal only, no checkpoint

            fresh = AnalysisEngine(journal_dir=d)
            assert fresh.recoveries == 1
            result = fresh.patch(final, PROP_NAME, base=r["version"])
            assert result["patched"] is True
            assert result["fallback"] is None
            fp = result["fingerprint"]
            recovered = set(
                fresh._delta[fp].check.solver.canonical_facts()
            )
            fresh.close()

        prop = simple_privilege_property()
        # same encoder + compiled algebra: canonical forms must coincide
        # exactly, with cycle elimination both on and off
        for cycle_elim in (True, False):
            cold = StableCheck(
                final, prop, compiled=True, cycle_elim=cycle_elim
            )
            assert set(cold.solver.canonical_facts()) == recovered
            assert cold.has_violation() == result["has_violation"]
        # object (uncompiled) and flat cores answer through different
        # encoders; the verdict is the cross-implementation oracle
        assert (
            StableCheck(final, prop, compiled=False).has_violation()
            == result["has_violation"]
        )
        cfg = build_cfg(final)
        for cycle_elim in (True, False):
            flat = AnnotatedChecker(
                cfg, prop, flat=True, compiled=True, cycle_elim=cycle_elim
            )
            assert flat.has_violation() == result["has_violation"]

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=4, deadline=None)
    def test_checkpointed_session_recovers_identically(self, seed):
        """Drain-style checkpoint (compaction) then restart: the oracle
        snapshot verifies and the session is immediately patchable."""
        spec = PackageSpec("recov-ckpt", 160, 5, seed=seed)
        steps = list(edit_stream(spec, 2))
        with tempfile.TemporaryDirectory() as d:
            engine = AnalysisEngine(journal_dir=d)
            r = engine.patch(steps[0].source, PROP_NAME)
            r = engine.patch(steps[1].source, PROP_NAME, base=r["version"])
            assert engine.checkpoint_sessions() == 1
            engine.close()

            fresh = AnalysisEngine(journal_dir=d)
            assert fresh.recoveries == 1
            assert fresh.metrics.get("journal.quarantined") == 0
            result = fresh.patch(
                steps[2].source, PROP_NAME, base=r["version"]
            )
            assert result["patched"] is True
            fresh.close()
        cold = cold_result(steps[2].source)
        assert_same_verdict(result, cold)


# ---------------------------------------------------------------------------
# kill-and-restart for every quarantine slug
# ---------------------------------------------------------------------------


def _craft_torn_record(tmp_path, fp):
    FaultInjector(SEED).tear_journal_tail(tmp_path / f"{fp}.wal")


def _craft_corrupt_record(tmp_path, fp):
    FaultInjector(SEED).corrupt_journal_record(
        tmp_path / f"{fp}.wal", record=0
    )


def _craft_missing_base(tmp_path, fp):
    record = frame_journal_record(
        {
            "kind": "patch",
            "seq": 1,
            "base": "a",
            "version": program_hash(P1),
            "source": P1,
            "key": None,
        }
    )
    (tmp_path / f"{fp}.wal").write_bytes(
        JOURNAL_MAGIC.encode("ascii") + b"\n" + record
    )


def _craft_bad_lineage(tmp_path, fp):
    base = frame_journal_record(
        {
            "kind": "base",
            "fingerprint": fp,
            "property": PROP_NAME,
            "version": program_hash(P1),
            "source": P1,
            "snapshot": None,
        }
    )
    patch = frame_journal_record(
        {
            "kind": "patch",
            "seq": 1,
            "base": "not-the-base-version",
            "version": program_hash(P2),
            "source": P2,
            "key": None,
        }
    )
    (tmp_path / f"{fp}.wal").write_bytes(
        JOURNAL_MAGIC.encode("ascii") + b"\n" + base + patch
    )


def _craft_replay_failed(tmp_path, fp):
    broken = "void main( {\n  this does not parse\n"
    base = frame_journal_record(
        {
            "kind": "base",
            "fingerprint": fp,
            "property": PROP_NAME,
            "version": program_hash(broken),
            "source": broken,
            "snapshot": None,
        }
    )
    (tmp_path / f"{fp}.wal").write_bytes(
        JOURNAL_MAGIC.encode("ascii") + b"\n" + base
    )


def _craft_snapshot_mismatch(tmp_path, fp):
    # the checkpointed session holds P2; swap its oracle snapshot for a
    # solve of an unrelated program
    lineage = SessionJournal(tmp_path).load(fp)
    assert isinstance(lineage, JournalLineage)
    assert lineage.snapshot is not None
    other = StableCheck(P3, simple_privilege_property())
    write_solver_snapshot(tmp_path / lineage.snapshot, other.solver)


CRAFTERS = {
    "torn-record": _craft_torn_record,
    "corrupt-record": _craft_corrupt_record,
    "missing-base": _craft_missing_base,
    "bad-lineage": _craft_bad_lineage,
    "replay-failed": _craft_replay_failed,
    "snapshot-mismatch": _craft_snapshot_mismatch,
}


class TestQuarantineSlugs:
    def test_every_slug_has_a_kill_restart_test(self):
        assert set(CRAFTERS) == set(QUARANTINE_SLUGS)

    @pytest.mark.parametrize("slug", QUARANTINE_SLUGS)
    def test_kill_restart_quarantines_and_falls_back_cold(
        self, tmp_path, slug
    ):
        # a real session dies (close() without checkpoint ~ crash), then
        # the slug's exact damage lands on its journal
        engine = AnalysisEngine(
            journal_dir=tmp_path,
            journal_compact_every=(
                1 if slug == "snapshot-mismatch" else 256
            ),
        )
        r1 = engine.patch(P1, PROP_NAME)
        r2 = engine.patch(P2, PROP_NAME, base=r1["version"])
        engine.close()
        fp = r2["fingerprint"]
        CRAFTERS[slug](tmp_path, fp)

        fresh = AnalysisEngine(journal_dir=tmp_path)
        assert fresh.recoveries == 0
        assert fresh._quarantined == {fp: slug}
        assert fresh.metrics.get(f"journal.quarantined.{slug}") == 1
        result = fresh.patch(P2, PROP_NAME, base=r2["version"])
        assert result["fallback"] == f"quarantined-{slug}"
        assert result["patched"] is False
        assert_same_verdict(result, cold_result(P2))
        # quarantine is one-shot: the session is healthy again
        follow = fresh.patch(P3, PROP_NAME, base=result["version"])
        assert follow["patched"] is True
        assert_same_verdict(follow, cold_result(P3))
        fresh.close()

    def test_quarantine_preserves_evidence_file(self, tmp_path):
        engine = AnalysisEngine(journal_dir=tmp_path)
        r1 = engine.patch(P1, PROP_NAME)
        engine.close()
        fp = r1["fingerprint"]
        _craft_bad_lineage(tmp_path, fp)
        fresh = AnalysisEngine(journal_dir=tmp_path)
        assert (tmp_path / f"{fp}.wal.quarantined").exists()
        assert not (tmp_path / f"{fp}.wal").exists()
        fresh.close()


# ---------------------------------------------------------------------------
# kill -9 a live server mid-patch-stream
# ---------------------------------------------------------------------------


def _spawn_server(journal_dir):
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--tcp",
            "127.0.0.1:0",
            "--journal-dir",
            str(journal_dir),
            "--workers",
            "2",
        ],
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    port = None
    recovered = 0
    deadline = time.time() + 30
    while time.time() < deadline:
        line = proc.stderr.readline()
        if not line:
            break
        if "recovered" in line:
            recovered = int(line.split("recovered", 1)[1].split()[0])
        if "listening on" in line:
            port = int(line.rsplit(":", 1)[1])
            break
    if port is None:
        proc.kill()
        raise AssertionError("server never reported its port")
    return proc, port, recovered


@pytest.mark.slow
class TestKillDashNine:
    def test_restart_restores_hot_session_exactly(self, tmp_path):
        spec = PackageSpec("kill9", 200, 6, seed=SEED + 1)
        steps = list(edit_stream(spec, 3))
        journal_dir = tmp_path / "journal"
        journal_dir.mkdir()

        proc, port, recovered = _spawn_server(journal_dir)
        assert recovered == 0
        try:
            client = ServiceClient("127.0.0.1", port, retries=2, backoff=0.05)
            r = client.patch(steps[0].source, PROP_NAME)
            for step in steps[1:3]:
                r = client.patch(step.source, PROP_NAME, base=r["version"])
            assert r["fallback"] in (None, "cold-start") or r["patched"]
            client.close()
        finally:
            # mid-patch-stream: the next edit never gets sent — the
            # process dies with only the journal to show for its state
            proc.kill()  # SIGKILL
            proc.wait(timeout=10)
        assert proc.returncode == -signal.SIGKILL

        proc2, port2, recovered = _spawn_server(journal_dir)
        try:
            assert recovered == 1
            client = ServiceClient(
                "127.0.0.1", port2, retries=2, backoff=0.05
            )
            result = client.patch(
                steps[3].source, PROP_NAME, base=r["version"]
            )
            assert result["patched"] is True
            assert result["fallback"] is None
            stats = client.stats()
            assert stats["recoveries"] == 1
            assert stats["uptime_s"] >= 0
            client.close()
        finally:
            proc2.send_signal(signal.SIGTERM)
            try:
                proc2.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc2.kill()
                proc2.wait(timeout=10)
        assert proc2.returncode == 0
        assert_same_verdict(result, cold_result(steps[3].source))

    def test_sigterm_drains_and_checkpoints(self, tmp_path):
        journal_dir = tmp_path / "journal"
        journal_dir.mkdir()
        proc, port, _ = _spawn_server(journal_dir)
        client = ServiceClient("127.0.0.1", port, retries=2, backoff=0.05)
        client.patch(P1, PROP_NAME)
        client.close()
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=15)
        assert proc.returncode == 0
        stderr = proc.stderr.read()
        assert "draining" in stderr
        assert "1 session(s) checkpointed" in stderr
        # the checkpoint rotated the journal down to a single base record
        fp = cold_result(P1)["fingerprint"]
        lineage = SessionJournal(journal_dir).load(fp)
        assert isinstance(lineage, JournalLineage)
        assert lineage.patches == []
