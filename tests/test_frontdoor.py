"""AsyncAnalysisServer: the selectors front door over process workers.

One loop thread owns every socket; governance (parse, admission,
deadline, breaker) happens inline; solves run in worker processes; the
parent serializes patches.  These tests drive it over real TCP sockets
— including pipelined requests on one connection, typed refusals, the
aggregated ``stats`` report, and the kill-a-worker availability story.
"""

import json
import os
import signal
import socket
import time

import pytest

from repro.service import protocol
from repro.service.frontdoor import AsyncAnalysisServer

PROGRAM = 'int main() { int fd = open("a"); close(fd); close(fd); return 0; }'


class Client:
    def __init__(self, host, port):
        self.sock = socket.create_connection((host, port), timeout=120)
        self.reader = self.sock.makefile("r")
        self._next_id = 0

    def send(self, op, params=None, rid=None, **extra):
        if rid is None:
            self._next_id += 1
            rid = self._next_id
        payload = {"v": 1, "id": rid, "op": op, "params": params or {}}
        payload.update(extra)
        self.sock.sendall((json.dumps(payload) + "\n").encode())
        return rid

    def send_raw(self, text):
        self.sock.sendall((text + "\n").encode())

    def recv(self):
        line = self.reader.readline()
        assert line, "server closed the connection"
        return json.loads(line)

    def rpc(self, op, params=None):
        rid = self.send(op, params)
        response = self.recv()
        assert response["id"] == rid
        return response

    def close(self):
        self.sock.close()


@pytest.fixture(scope="module")
def server():
    srv = AsyncAnalysisServer(
        workers=1, preload=["full-privilege"], timeout=60.0
    )
    srv.start()
    yield srv
    srv.close()


@pytest.fixture()
def client(server):
    host, port = server._listener.getsockname()[:2]
    c = Client(host, port)
    yield c
    c.close()


class TestRoundTrips:
    def test_ping(self, client):
        response = client.rpc("ping")
        assert response["ok"] and response["result"]["pong"] is True

    def test_check(self, client):
        response = client.rpc(
            "check", {"program": PROGRAM, "property": "full-privilege"}
        )
        assert response["ok"]
        assert "violations" in response["result"]

    def test_typed_engine_error(self, client):
        response = client.rpc(
            "check", {"program": PROGRAM, "property": "bogus"}
        )
        assert not response["ok"]
        assert response["error"]["code"] == protocol.E_UNSUPPORTED

    def test_malformed_json(self, client):
        client.send_raw("{not json")
        response = client.recv()
        assert response["error"]["code"] == protocol.E_MALFORMED

    def test_version_mismatch(self, client):
        client.send_raw(json.dumps({"v": 99, "id": 1, "op": "ping"}))
        response = client.recv()
        assert response["error"]["code"] == protocol.E_VERSION

    def test_pipelined_requests_all_answered(self, client):
        ids = [
            client.send(
                "check", {"program": PROGRAM, "property": "full-privilege"}
            )
            for _ in range(3)
        ]
        ids.append(client.send("ping"))
        got = {client.recv()["id"] for _ in ids}
        assert got == set(ids)

    def test_expired_deadline_refused_before_admission(self, client):
        response = client.rpc(
            "check",
            {
                "program": PROGRAM,
                "property": "full-privilege",
                "deadline": time.time() - 2.0,
            },
        )
        assert response["error"]["code"] == protocol.E_DEADLINE

    def test_patch_runs_in_parent(self, client, server):
        response = client.rpc(
            "patch", {"program": PROGRAM, "property": "full-privilege"}
        )
        assert response["ok"], response
        # The session lives in the parent engine, not a worker.
        assert server.engine.stats()["cache"]["patch_sessions"] == 1

    def test_stats_aggregates_pool(self, client):
        client.rpc("check", {"program": PROGRAM, "property": "full-privilege"})
        response = client.rpc("stats")
        result = response["result"]
        assert result["pool"]["workers"] == 1
        assert result["frontdoor"]["inflight"] == 0
        counters = result["counters"]
        # Worker-side counters visible through the front door.
        assert counters.get("preload.properties", 0) >= 1
        assert counters.get("pool.dispatched", 0) >= 1
        # Parent-side counters in the same report.
        assert counters.get("requests.total", 0) >= 2


class TestAvailability:
    def test_killed_worker_is_unavailable_then_heals(self):
        srv = AsyncAnalysisServer(
            workers=1, preload=["full-privilege"], timeout=60.0
        )
        host, port = srv.start()
        client = Client(host, port)
        try:
            assert client.rpc(
                "check", {"program": PROGRAM, "property": "full-privilege"}
            )["ok"]
            (pid,) = srv.pool.worker_pids()
            os.kill(pid, signal.SIGKILL)
            saw_unavailable = False
            healed = False
            deadline = time.time() + 60
            while time.time() < deadline:
                response = client.rpc(
                    "check", {"program": PROGRAM, "property": "full-privilege"}
                )
                if response["ok"]:
                    if saw_unavailable:
                        healed = True
                        break
                else:
                    assert (
                        response["error"]["code"] == protocol.E_UNAVAILABLE
                    ), response
                    saw_unavailable = True
                time.sleep(0.1)
            assert saw_unavailable, "SIGKILL never surfaced as unavailable"
            assert healed, "pool never healed after the rebuild"
            assert srv.pool.rebuilds >= 1
        finally:
            client.close()
            srv.close()

    def test_shutdown_op_drains_and_exits(self):
        srv = AsyncAnalysisServer(workers=1, timeout=30.0)
        host, port = srv.start()
        client = Client(host, port)
        try:
            response = client.rpc("shutdown")
            assert response["result"]["closing"] is True
            srv.wait()  # loop exits once drained
        finally:
            client.close()
            srv.close()
