"""Tests for the prefix/suffix/substring constructions (§2.3, §5)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfa.automaton import DFA
from repro.dfa.regex import regex_to_dfa
from repro.dfa.substrings import prefix_dfa, substring_dfa, suffix_dfa


class TestConcrete:
    def setup_method(self):
        self.machine = regex_to_dfa("a(b|c)*d")

    def test_prefixes(self):
        pre = prefix_dfa(self.machine)
        for word in ["", "a", "ab", "abc", "abcd"]:
            assert pre.accepts(word), word
        for word in ["b", "da", "abda"]:
            assert not pre.accepts(word), word

    def test_suffixes(self):
        suf = suffix_dfa(self.machine)
        for word in ["", "d", "cd", "bcd", "abcd"]:
            assert suf.accepts(word), word
        for word in ["a", "ab", "dc"]:
            assert not suf.accepts(word), word

    def test_substrings(self):
        sub = substring_dfa(self.machine)
        for word in ["", "a", "bc", "cb", "bcd", "abcd"]:
            assert sub.accepts(word), word
        for word in ["da", "ba", "dd"]:
            assert not sub.accepts(word), word

    def test_language_contained_in_substrings(self):
        sub = substring_dfa(self.machine)
        for word in self.machine.words(5):
            assert sub.accepts(word)


@st.composite
def random_dfas(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    edges = [
        (s, sym, draw(st.integers(min_value=0, max_value=n - 1)))
        for s in range(n)
        for sym in ("a", "b")
    ]
    accepting = draw(st.sets(st.integers(min_value=0, max_value=n - 1)))
    return DFA.from_partial(n, {"a", "b"}, 0, accepting, edges)


def _brute_force_substrings(machine, max_len):
    words = set(machine.words(max_len))
    subs = set()
    for word in words:
        for i in range(len(word) + 1):
            for j in range(i, len(word) + 1):
                subs.add(word[i:j])
    return subs


@given(random_dfas())
@settings(max_examples=60, deadline=None)
def test_substring_dfa_superset_of_bruteforce(machine):
    """Every substring of a short accepted word is accepted by M^sub.

    (The converse needs unboundedly long witnesses, so we check one
    direction exhaustively on short words.)"""
    sub = substring_dfa(machine)
    for word in _brute_force_substrings(machine, 5):
        assert sub.accepts(word)


@given(random_dfas(), st.lists(st.sampled_from(["a", "b"]), max_size=5).map(tuple))
@settings(max_examples=80, deadline=None)
def test_prefix_dfa_semantics(machine, word):
    """w is a prefix iff δ(w, s0) can still reach acceptance."""
    expected = machine.run(word) in machine.coreachable_states()
    assert prefix_dfa(machine).accepts(word) == expected


@given(random_dfas(), st.lists(st.sampled_from(["a", "b"]), max_size=5).map(tuple))
@settings(max_examples=80, deadline=None)
def test_suffix_dfa_semantics(machine, word):
    """w is a suffix iff some reachable state leads to acceptance on w."""
    expected = any(
        machine.run(word, s) in machine.accepting
        for s in machine.reachable_states()
    )
    assert suffix_dfa(machine).accepts(word) == expected
