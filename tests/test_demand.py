"""Tests for the demand-driven forward solver (Section 5 realized)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import build_cfg
from repro.core.demand import DemandForwardSolver
from repro.core.errors import ConstraintError
from repro.core.terms import Constructor, Variable, constant
from repro.dfa.gallery import adversarial_machine, privilege_machine
from repro.modelcheck import (
    AnnotatedChecker,
    DemandChecker,
    chroot_property,
    file_state_property,
    full_privilege_property,
    simple_privilege_property,
)
from tests.test_cross_validation import random_program


class TestFragmentLoading:
    def setup_method(self):
        self.solver = DemandForwardSolver(privilege_machine())

    def test_rejects_annotated_constructed(self):
        box = Constructor("box", 1)
        with pytest.raises(ConstraintError):
            self.solver.add(box(Variable("X")), Variable("Y"), ["execl"])

    def test_rejects_nonvariable_args(self):
        box = Constructor("box", 1)
        with pytest.raises(ConstraintError):
            self.solver.add(box(constant("c")), Variable("Y"))

    def test_rejects_constructed_rhs(self):
        box = Constructor("box", 1)
        with pytest.raises(ConstraintError):
            self.solver.add(Variable("X"), box(Variable("Y")))


class TestTabulation:
    def test_plain_chain(self):
        machine = privilege_machine()
        solver = DemandForwardSolver(machine)
        a, b, c = Variable("A"), Variable("B"), Variable("C")
        solver.add_source("pc", a)
        solver.add(a, b, ["seteuid_zero"])
        solver.add(b, c, ["execl"])
        solution = solver.solve("pc")
        error = machine.run(["seteuid_zero", "execl"])
        assert error in solution.states_of(c)
        assert solution.reaches(c)
        assert not solution.reaches(b)

    def test_wrap_unwrap_matching(self):
        machine = privilege_machine()
        solver = DemandForwardSolver(machine)
        o1, o2 = Constructor("o1", 1), Constructor("o2", 1)
        caller1, caller2, entry, exit_, after1, after2 = (
            Variable(n) for n in ("C1", "C2", "En", "Ex", "A1", "A2")
        )
        solver.add_source("pc", caller1)
        solver.add_source("pc", caller2, ["seteuid_zero"])
        solver.add(o1(caller1), entry)
        solver.add(o2(caller2), entry)
        solver.add(entry, exit_)
        solver.add(o1.proj(1, exit_), after1)
        solver.add(o2.proj(1, exit_), after2)
        solution = solver.solve("pc")
        unpriv, priv = machine.start, machine.run(["seteuid_zero"])
        # contexts stay separate: caller1's state returns only to after1
        assert solution.states_of(after1) == {unpriv}
        assert solution.states_of(after2) == {priv}

    def test_matched_vs_pn(self):
        machine = privilege_machine()
        solver = DemandForwardSolver(machine)
        o = Constructor("o", 1)
        caller, entry = Variable("C"), Variable("En")
        solver.add_source("pc", caller)
        solver.add(o(caller), entry)
        solution = solver.solve("pc")
        # inside the pending wrap: PN sees it, matched does not
        assert solution.states_of(entry)
        assert not solution.states_of(entry, matched_only=True)
        assert solution.states_of(caller, matched_only=True)

    def test_summaries_reused_across_callers(self):
        machine = privilege_machine()
        solver = DemandForwardSolver(machine)
        o1, o2 = Constructor("o1", 1), Constructor("o2", 1)
        c1, c2, entry, exit_, r1, r2 = (
            Variable(n) for n in ("c1", "c2", "en", "ex", "r1", "r2")
        )
        solver.add_source("pc", c1)
        solver.add_source("pc", c2)
        solver.add(o1(c1), entry)
        solver.add(o2(c2), entry)
        solver.add(entry, exit_, ["seteuid_zero"])
        solver.add(o1.proj(1, exit_), r1)
        solver.add(o2.proj(1, exit_), r2)
        solution = solver.solve("pc")
        priv = machine.run(["seteuid_zero"])
        assert solution.states_of(r1) == {priv}
        assert solution.states_of(r2) == {priv}

    def test_forward_state_bound(self):
        machine = adversarial_machine(4)
        solver = DemandForwardSolver(machine)
        variables = [Variable(f"v{i}") for i in range(10)]
        solver.add_source("pc", variables[0])
        symbols = sorted(machine.alphabet)
        for i in range(9):
            for sym in symbols:
                solver.add(variables[i], variables[i + 1], [sym])
                solver.add(variables[i + 1], variables[i], [sym])
        solution = solver.solve("pc")
        assert solution.max_states_per_variable() <= machine.n_states


class TestDemandChecker:
    def test_sec63(self):
        source = """
        int main() {
          seteuid(0);
          if (c) { seteuid(getuid()); } else { other(); }
          execl("/bin/sh", 0);
          return 0;
        }
        """
        checker = DemandChecker(build_cfg(source), simple_privilege_property())
        assert checker.has_violation()
        assert checker.violation_nodes()

    def test_clean(self):
        source = "int main() { seteuid(0); seteuid(getuid()); execl(\"/x\", 0); }"
        checker = DemandChecker(build_cfg(source), simple_privilege_property())
        assert not checker.has_violation()

    def test_states_at(self):
        source = "int main() { seteuid(0); done(); }"
        cfg = build_cfg(source)
        prop = simple_privilege_property()
        checker = DemandChecker(cfg, prop)
        priv = prop.machine.run(["seteuid_zero"])
        assert priv in checker.states_at(cfg.main.exit)

    def test_parametric_rejected(self):
        cfg = build_cfg("int main() { return 0; }")
        with pytest.raises(ValueError):
            DemandChecker(cfg, file_state_property())

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=40, deadline=None)
    def test_agrees_with_bidirectional(self, seed):
        cfg = build_cfg(random_program(seed))
        prop = simple_privilege_property()
        bidirectional = AnnotatedChecker(cfg, prop).check().has_violation
        demand = DemandChecker(cfg, prop).has_violation()
        assert bidirectional == demand, seed

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=20, deadline=None)
    def test_agrees_on_full_privilege(self, seed):
        cfg = build_cfg(random_program(seed))
        prop = full_privilege_property()
        bidirectional = AnnotatedChecker(cfg, prop).check().has_violation
        demand = DemandChecker(cfg, prop).has_violation()
        assert bidirectional == demand, seed

    def test_chroot_agreement(self):
        source = """
        int main() { chroot("/jail"); open("x", 0); return 0; }
        """
        cfg = build_cfg(source)
        assert DemandChecker(cfg, chroot_property()).has_violation()


class TestDemandTraces:
    def test_trace_reaches_back_to_source(self):
        machine = privilege_machine()
        solver = DemandForwardSolver(machine)
        chain = [Variable(f"v{i}") for i in range(4)]
        solver.add_source("pc", chain[0])
        solver.add(chain[0], chain[1], ["seteuid_zero"])
        solver.add(chain[1], chain[2])
        solver.add(chain[2], chain[3], ["execl"])
        solution = solver.solve("pc")
        error = machine.run(["seteuid_zero", "execl"])
        trace = solution.trace(chain[3], error)
        assert trace[0] == (chain[0], machine.start)
        assert trace[-1] == (chain[3], error)
        # states along the trace are monotone wrt the machine run
        assert len(trace) == 4

    def test_trace_through_call(self):
        machine = privilege_machine()
        solver = DemandForwardSolver(machine)
        o = Constructor("o", 1)
        caller, entry, exit_, after = (
            Variable(n) for n in ("C", "En", "Ex", "Af")
        )
        solver.add_source("pc", caller, ["seteuid_zero"])
        solver.add(o(caller), entry)
        solver.add(entry, exit_, ["execl"])
        solver.add(o.proj(1, exit_), after)
        solution = solver.solve("pc")
        error = machine.run(["seteuid_zero", "execl"])
        trace = solution.trace(after, error)
        assert trace
        assert trace[-1] == (after, error)
        variables = [fact[0] for fact in trace]
        assert entry in variables  # the path went through the callee

    def test_missing_fact_has_empty_trace(self):
        machine = privilege_machine()
        solver = DemandForwardSolver(machine)
        x = Variable("X")
        solver.add_source("pc", x)
        solution = solver.solve("pc")
        assert solution.trace(Variable("ghost"), 0) == []


class TestDemandCheckerWitness:
    def test_witness_statement_path(self):
        source = """
        int main() {
          seteuid(0);
          other();
          execl("/bin/sh", 0);
          return 0;
        }
        """
        cfg = build_cfg(source)
        prop = simple_privilege_property()
        checker = DemandChecker(cfg, prop)
        assert checker.has_violation()
        error_node = checker.violation_nodes()[0]
        error_state = next(
            s for s in checker.states_at(error_node)
            if s in prop.machine.accepting
        )
        trace = checker.witness(error_node, error_state)
        assert trace
        assert trace[0].kind == "entry"
        assert trace[-1].id == error_node.id
        lines = [n.line for n in trace]
        assert any(l == 3 for l in lines)  # passes the seteuid(0)

    def test_cli_demand_engine(self, tmp_path=None):
        import pathlib
        import tempfile

        from repro.cli import main as cli_main

        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "p.c"
            path.write_text(
                'int main() { seteuid(0); execl("/x", 0); }'
            )
            assert (
                cli_main(
                    [
                        "check",
                        str(path),
                        "--property",
                        "simple-privilege",
                        "--engine",
                        "demand",
                    ]
                )
                == 1
            )
