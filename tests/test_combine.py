"""Tests for property products (§2.2: any number of regular properties)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import build_cfg
from repro.dfa.monoid import TransitionMonoid
from repro.modelcheck import (
    AnnotatedChecker,
    DemandChecker,
    chroot_property,
    combine_properties,
    component_errors,
    file_state_property,
    full_privilege_property,
    simple_privilege_property,
)
from repro.mops import MopsChecker
from tests.test_cross_validation import random_program

BOTH_BAD = """
int main() {
  seteuid(0);
  chroot("/jail");
  execl("/bin/sh", 0);
  return 0;
}
"""

ONLY_PRIVILEGE = """
int main() {
  seteuid(0);
  chroot("/jail");
  chdir("/");
  execl("/bin/sh", 0);
  return 0;
}
"""

CLEAN = """
int main() {
  seteuid(0);
  seteuid(getuid());
  chroot("/jail");
  chdir("/");
  execl("/bin/sh", 0);
  return 0;
}
"""


@pytest.fixture(scope="module")
def combo():
    return combine_properties([simple_privilege_property(), chroot_property()])


class TestProductConstruction:
    def test_reachable_product_only(self, combo):
        separate = (
            simple_privilege_property().machine.n_states
            * chroot_property().machine.n_states
        )
        assert combo.machine.n_states <= separate

    def test_monoid_bounded_by_component_product(self, combo):
        product_size = TransitionMonoid(combo.machine).size()
        bound = TransitionMonoid(
            simple_privilege_property().machine
        ).size() * TransitionMonoid(chroot_property().machine).size()
        assert product_size <= bound

    def test_name(self, combo):
        assert "simple-privilege" in combo.name and "chroot" in combo.name

    def test_parametric_rejected(self):
        with pytest.raises(ValueError):
            combine_properties([file_state_property()])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_properties([])

    def test_single_property_passthrough_semantics(self):
        single = combine_properties([simple_privilege_property()])
        cfg = build_cfg(BOTH_BAD)
        combined = AnnotatedChecker(cfg, single).check().has_violation
        plain = AnnotatedChecker(
            cfg, simple_privilege_property()
        ).check().has_violation
        assert combined == plain


class TestCombinedChecking:
    def test_both_components_flagged(self, combo):
        cfg = build_cfg(BOTH_BAD)
        checker = AnnotatedChecker(cfg, combo)
        assert checker.check().has_violation
        errors: set[str] = set()
        for state in checker.states_at(cfg.main.exit):
            errors.update(component_errors(combo, state))
        assert errors == {"simple-privilege", "chroot-jail"}

    def test_partial_violation_identified(self, combo):
        cfg = build_cfg(ONLY_PRIVILEGE)
        checker = AnnotatedChecker(cfg, combo)
        assert checker.check().has_violation
        errors: set[str] = set()
        for state in checker.states_at(cfg.main.exit):
            errors.update(component_errors(combo, state))
        assert errors == {"simple-privilege"}

    def test_clean_program(self, combo):
        cfg = build_cfg(CLEAN)
        assert not AnnotatedChecker(cfg, combo).check().has_violation

    def test_engines_agree_on_combined_property(self, combo):
        for source in (BOTH_BAD, ONLY_PRIVILEGE, CLEAN):
            cfg = build_cfg(source)
            annotated = AnnotatedChecker(cfg, combo).check().has_violation
            mops = MopsChecker(cfg, combo).check().has_violation
            demand = DemandChecker(cfg, combo).has_violation()
            assert annotated == mops == demand, source


@given(st.integers(min_value=0, max_value=50_000))
@settings(max_examples=30, deadline=None)
def test_combined_equals_disjunction_of_separate(seed):
    """Checking the product must equal checking each property alone."""
    combo = combine_properties(
        [simple_privilege_property(), chroot_property()]
    )
    cfg = build_cfg(random_program(seed))
    separate = AnnotatedChecker(
        cfg, simple_privilege_property()
    ).check().has_violation or AnnotatedChecker(
        cfg, chroot_property()
    ).check().has_violation
    combined = AnnotatedChecker(cfg, combo).check().has_violation
    assert combined == separate, seed


def test_three_way_product():
    combo = combine_properties(
        [
            simple_privilege_property(),
            chroot_property(),
            full_privilege_property(),
        ]
    )
    cfg = build_cfg(BOTH_BAD)
    assert AnnotatedChecker(cfg, combo).check().has_violation
