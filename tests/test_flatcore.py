"""Cross-core equivalence suite for the flat-array solver.

The load-bearing property: :class:`repro.core.flatcore.FlatSolver` is a
pure performance restructuring — for every constraint set over a
compiled algebra it reaches the *same* canonical solved form as the
object-mode :class:`~repro.core.solver.Solver`, under every feature
combination the object core supports (cycle elimination on/off, budget
interrupt/resume, mark/rollback, persistence round-trips, and
DeltaSolver patching on the object side).  The hypothesis suite asserts
that across randomized constraint sets and both compiled algebra
families; the unit tests pin the difference-propagation invariants
(``compositions_saved``, ``redundant_compositions == 0``), the numpy
column backend, and the typed rejections.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.annotations import (
    HAVE_NUMPY,
    CompiledGenKillAlgebra,
    CompiledMonoidAlgebra,
    MonoidAlgebra,
    ProductAlgebra,
)
from repro.core.budget import Budget
from repro.core.errors import SolverInterrupted
from repro.core.flatcore import NUMPY_MIN_COLUMN, FlatSolver
from repro.core.persist import dump_solver, load_solver
from repro.core.queries import Reachability
from repro.core.solver import Solver
from repro.core.terms import Constructed, Constructor, Variable, constant
from repro.dfa.gallery import one_bit_machine, privilege_machine


def _privilege_algebra():
    return CompiledMonoidAlgebra(privilege_machine())


def _genkill_algebra():
    return CompiledGenKillAlgebra(4)


def _random_constraints(seed: int, genkill: bool):
    """A randomized constraint set over one of the compiled algebras.

    Heavy on identity edges (to provoke cycles), with constant lowers,
    wraps and unwraps mixed in — the same shape the cycle-elimination
    equivalence suite uses.
    """
    algebra = _genkill_algebra() if genkill else _privilege_algebra()
    rng = random.Random(seed)
    n = rng.randrange(4, 10)
    variables = [Variable(f"v{i}") for i in range(n)]
    ctor = Constructor("w", 1)
    constants = [constant("k0"), constant("k1")]

    def annotation():
        if genkill:
            return algebra.of_effect(
                [rng.randrange(4) for _ in range(rng.randrange(2))],
                [rng.randrange(4) for _ in range(rng.randrange(2))],
            )
        return rng.randrange(algebra.size())

    constraints = []
    for _ in range(rng.randrange(6, 24)):
        roll = rng.random()
        a, b = variables[rng.randrange(n)], variables[rng.randrange(n)]
        if roll < 0.55:
            ann = (
                annotation()
                if rng.random() < 0.3
                else algebra.identity_index
            )
            constraints.append((a, b, ann))
        elif roll < 0.7:
            constraints.append((rng.choice(constants), b, annotation()))
        elif roll < 0.85:
            constraints.append(
                (Constructed(ctor, (a,)), b, algebra.identity_index)
            )
        else:
            constraints.append(
                (ctor.proj(1, a), b, algebra.identity_index)
            )
    return algebra, constraints


def _canonical(solver):
    return set(solver.canonical_facts())


class TestFlatEqualsObject:
    """Flat ≡ object canonical solved forms, across the feature matrix."""

    @given(
        st.integers(min_value=0, max_value=100_000),
        st.booleans(),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_canonical_form_matches_object_solver(
        self, seed, genkill, cycle_elim
    ):
        algebra, constraints = _random_constraints(seed, genkill)
        flat = FlatSolver(algebra, cycle_elim=cycle_elim)
        flat.add_many(constraints)
        obj = Solver(algebra, record_reasons=False, cycle_elim=cycle_elim)
        obj.add_many(constraints)
        assert _canonical(flat) == _canonical(obj), seed
        assert flat.fact_count() == obj.fact_count(), seed
        assert len(flat.inconsistencies) == len(obj.inconsistencies), seed

    @given(st.integers(min_value=0, max_value=100_000), st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_interrupt_resume_reaches_same_fixpoint(self, seed, genkill):
        algebra, constraints = _random_constraints(seed, genkill)
        flat = FlatSolver(
            algebra, budget=Budget(max_steps=5, check_interval=1)
        )
        try:
            flat.add_many(constraints)
        except SolverInterrupted:
            pass
        while flat.pending_count():
            flat.budget = Budget(max_steps=5, check_interval=1)
            try:
                flat.resume()
            except SolverInterrupted:
                continue
        obj = Solver(algebra, record_reasons=False)
        obj.add_many(constraints)
        assert _canonical(flat) == _canonical(obj), seed

    @given(st.integers(min_value=0, max_value=100_000), st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_mark_rollback_matches_object_solver(self, seed, genkill):
        algebra, constraints = _random_constraints(seed, genkill)
        _, speculative = _random_constraints(seed + 1, genkill)
        half = len(constraints) // 2
        flat = FlatSolver(algebra)
        obj = Solver(algebra, record_reasons=False)
        for solver in (flat, obj):
            solver.add_many(constraints[:half])
            solver.mark()
            solver.add_many(speculative)
            solver.rollback()
            solver.add_many(constraints[half:])
        assert _canonical(flat) == _canonical(obj), seed

    @given(st.integers(min_value=0, max_value=100_000), st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_patch_after_solve_matches_cold_flat(self, seed, genkill):
        """Object DeltaSolver patching lands on the cold flat form.

        The flat core does not support retraction (no provenance); the
        contract is that a flat *cold solve of the edited set* equals
        the object core's patched solved form.
        """
        from repro.incremental import DeltaSolver, UnsupportedConstraintError

        algebra, constraints = _random_constraints(seed, genkill)
        # DeltaSolver patches edges and constant lowers; keep the given
        # set to that fragment.
        given = [
            (lhs, rhs, ann, None)
            for lhs, rhs, ann in constraints
            if isinstance(lhs, Variable)
            or (isinstance(lhs, Constructed) and lhs.is_constant)
        ]
        if not given:
            return
        obj = Solver(algebra, record_reasons=True)
        obj.add_many([g[:3] for g in given])
        delta = DeltaSolver(obj, given)
        retract = given[seed % len(given)]
        _, extra = _random_constraints(seed + 2, genkill)
        adds = [
            (lhs, rhs, ann, None)
            for lhs, rhs, ann in extra
            if isinstance(lhs, Variable)
            or (isinstance(lhs, Constructed) and lhs.is_constant)
        ]
        try:
            delta.patch(
                adds=adds, retracts=[(retract[0], retract[1], retract[2])]
            )
        except UnsupportedConstraintError:
            return
        final = [g[:3] for g in given if g is not retract]
        final.extend(a[:3] for a in adds)
        flat = FlatSolver(algebra)
        flat.add_many(final)
        assert _canonical(flat) == _canonical(obj), seed

    @given(st.integers(min_value=0, max_value=100_000), st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_reachability_matches_object_solver(self, seed, genkill):
        algebra, constraints = _random_constraints(seed, genkill)
        flat = FlatSolver(algebra)
        flat.add_many(constraints)
        obj = Solver(algebra, record_reasons=False)
        obj.add_many(constraints)
        for through in (True, False):
            flat_reach = Reachability(flat, through_constructors=through)
            obj_reach = Reachability(obj, through_constructors=through)
            variables = flat.variables() | obj.variables()
            for var in variables:
                assert {
                    (c, a) for c, a, _o in flat_reach.facts(var)
                } == {(c, a) for c, a, _o in obj_reach.facts(var)}, seed


class TestDeterminism:
    @given(st.integers(min_value=0, max_value=100_000), st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_two_runs_identical_facts_and_stats(self, seed, genkill):
        runs = []
        for _ in range(2):
            algebra, constraints = _random_constraints(seed, genkill)
            flat = FlatSolver(algebra)
            flat.add_many(constraints)
            runs.append(
                (list(flat.canonical_facts()), flat.stats.as_dict())
            )
        assert runs[0][0] == runs[1][0], seed  # ordered, not just setwise
        assert runs[0][1] == runs[1][1], seed


class TestDifferencePropagation:
    @given(st.integers(min_value=0, max_value=100_000), st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_no_redundant_compositions_at_fixpoint(self, seed, genkill):
        algebra, constraints = _random_constraints(seed, genkill)
        flat = FlatSolver(algebra, track_redundant=True)
        flat.add_many(constraints)
        assert flat.stats.redundant_compositions == 0, seed
        obj = Solver(algebra, record_reasons=False, track_redundant=True)
        obj.add_many(constraints)
        assert obj.stats.redundant_compositions == 0, seed

    def test_compositions_saved_counts_skipped_window(self):
        # One edge drained twice: the second drain must skip the lowers
        # the first drain already pushed across it.
        algebra = _privilege_algebra()
        solver = Solver(algebra, record_reasons=False)
        x, y, z = Variable("X"), Variable("Y"), Variable("Z")
        solver.add(constant("k0"), x)
        solver.add(x, y)  # k0 crosses; lower column of X drained
        solver.add(constant("k1"), x)  # only k1 should cross now
        assert solver.stats.redundant_compositions == 0
        solver2 = Solver(algebra, record_reasons=False)
        solver2.add(constant("k0"), x)
        solver2.add(constant("k1"), x)
        solver2.add(x, y)
        solver2.add(x, z)
        # Same closure either way.
        assert set(solver.canonical_facts()) <= set(solver2.canonical_facts())

    def test_stats_expose_new_counters(self):
        payload = FlatSolver(_privilege_algebra()).stats.as_dict()
        assert "compositions_saved" in payload
        assert "redundant_compositions" in payload


class TestNumpyBackend:
    def _column_workload(self, algebra):
        """Enough lowers on one variable to cross the vectorize threshold."""
        rng = random.Random(3)
        x, y = Variable("X"), Variable("Y")
        batch = []
        for i in range(NUMPY_MIN_COLUMN + 20):
            ann = algebra.of_effect(
                [rng.randrange(4) for _ in range(rng.randrange(3))],
                [rng.randrange(4) for _ in range(rng.randrange(3))],
            )
            batch.append((constant(f"k{i}"), x, ann))
        return batch, [(x, y, algebra.of_effect([0], [1]))]

    def test_vectorized_column_matches_scalar(self):
        algebra = _genkill_algebra()
        lowers, edge = self._column_workload(algebra)
        fast = FlatSolver(algebra)
        fast.add_many(lowers)
        fast.add_many(edge)
        scalar_algebra = _genkill_algebra()
        scalar_algebra.then_many = None  # force the pure-python loop
        slow = FlatSolver(scalar_algebra)
        slow.add_many(lowers)
        slow.add_many(edge)
        assert _canonical(fast) == _canonical(slow)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
    def test_genkill_then_many_matches_then(self):
        algebra = _genkill_algebra()
        assert algebra.then_many is not None
        rng = random.Random(7)
        anns = [rng.getrandbits(8) for _ in range(100)]
        for second in (0, algebra.of_effect([1], [2]), rng.getrandbits(8)):
            assert algebra.then_many(anns, 80, second) == [
                algebra.then(a, second) for a in anns[:80]
            ]

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
    def test_monoid_then_many_matches_then(self):
        algebra = _privilege_algebra()
        assert algebra.then_many is not None
        rng = random.Random(7)
        anns = [rng.randrange(algebra.size()) for _ in range(100)]
        for second in range(algebra.size()):
            assert algebra.then_many(anns, 80, second) == [
                algebra.then(a, second) for a in anns[:80]
            ]

    def test_wide_genkill_disables_vectorization(self):
        # Packed width beyond an int64 lane must fall back cleanly.
        wide = CompiledGenKillAlgebra(40)
        assert wide.then_many is None


class TestComposeShortCircuits:
    """Satellite: dedupe checks run before compositions are evaluated."""

    def test_product_algebra_memoizes_then(self):
        bit = MonoidAlgebra(one_bit_machine())
        product = ProductAlgebra([bit, bit])
        a = (bit.symbol("g"), bit.identity)
        b = (bit.identity, bit.symbol("k"))
        first = product.then(a, b)
        assert product.then(a, b) == first
        assert product.compose_calls == 2
        assert product.compose_evals == 1  # second call hit the memo

    def test_forward_solver_skips_repeated_compositions(self):
        from repro.core.unidirectional import AnnotatedGraph, ForwardSolver

        machine = privilege_machine()
        graph = AnnotatedGraph(machine)
        word = (sorted(machine.alphabet)[0],)
        # A fan: many edges carrying the same word from one node, so
        # the same (state, word) pair recurs across (fact, edge) pairs.
        for i in range(6):
            graph.add_edge("src", f"mid{i}", word)
            graph.add_edge(f"mid{i}", "snk", word)
        solver = ForwardSolver(graph)
        solver.solve(["src"])
        assert solver.compose_calls > solver.compose_evals
        assert solver.compose_evals >= 1

    def test_backward_solver_skips_repeated_preimages(self):
        from repro.core.unidirectional import AnnotatedGraph, BackwardSolver

        machine = privilege_machine()
        graph = AnnotatedGraph(machine)
        word = (sorted(machine.alphabet)[0],)
        for i in range(6):
            graph.add_edge("src", f"mid{i}", word)
            graph.add_edge(f"mid{i}", "snk", word)
        solver = BackwardSolver(graph)
        solver.solve(["snk"])
        assert solver.compose_calls > solver.compose_evals

    def test_demand_solver_skips_repeated_compositions(self):
        from repro.core.demand import DemandForwardSolver

        machine = privilege_machine()
        solver = DemandForwardSolver(machine)
        word = (sorted(machine.alphabet)[0],)
        vs = [Variable(f"d{i}") for i in range(6)]
        snk = Variable("snk")
        src_var = Variable("src")
        for v in vs:
            solver.add(src_var, v, word)
            solver.add(v, snk, word)
        solver.add_source("b", src_var)
        solver.solve("b")
        assert solver.compose_calls > solver.compose_evals


class TestFlatPersistence:
    def test_fixpoint_round_trip(self):
        algebra, constraints = _random_constraints(17, genkill=False)
        flat = FlatSolver(algebra)
        flat.add_many(constraints)
        loaded = load_solver(dump_solver(flat))
        assert isinstance(loaded, FlatSolver)
        assert _canonical(loaded) == _canonical(flat)
        assert loaded.fact_count() == flat.fact_count()
        assert loaded.variables() >= flat.variables()

    def test_checkpoint_round_trip_resumes(self):
        algebra, constraints = _random_constraints(23, genkill=False)
        flat = FlatSolver(
            algebra, budget=Budget(max_steps=4, check_interval=1)
        )
        try:
            flat.add_many(constraints)
        except SolverInterrupted:
            pass
        if not flat.pending_count():
            pytest.skip("workload solved inside the budget")
        loaded = load_solver(dump_solver(flat))
        assert isinstance(loaded, FlatSolver)
        assert loaded.pending_count() > 0
        loaded.budget = None
        loaded.resume()
        full = FlatSolver(algebra)
        full.add_many(constraints)
        assert _canonical(loaded) == _canonical(full)

    def test_adds_after_load_resume_online_solving(self):
        algebra, constraints = _random_constraints(29, genkill=False)
        _, more = _random_constraints(31, genkill=False)
        flat = FlatSolver(algebra)
        flat.add_many(constraints)
        loaded = load_solver(dump_solver(flat))
        loaded.add_many(more)
        full = FlatSolver(algebra)
        full.add_many(list(constraints) + list(more))
        assert _canonical(loaded) == _canonical(full)

    def test_flat_dump_loads_into_object_core_and_back(self):
        import json

        algebra, constraints = _random_constraints(37, genkill=False)
        flat = FlatSolver(algebra)
        flat.add_many(constraints)
        data = json.loads(dump_solver(flat))
        assert data["core"] == "flat"
        data["core"] = "object"
        obj = load_solver(json.dumps(data))
        assert isinstance(obj, Solver)
        assert _canonical(obj) == _canonical(flat)
        back = json.loads(dump_solver(obj))
        back["core"] = "flat"
        again = load_solver(json.dumps(back))
        assert isinstance(again, FlatSolver)
        assert _canonical(again) == _canonical(flat)


class TestTypedRejections:
    def test_record_reasons_rejected(self):
        with pytest.raises(TypeError, match="provenance"):
            FlatSolver(_privilege_algebra(), record_reasons=True)

    def test_object_algebra_rejected(self):
        with pytest.raises(TypeError, match="compiled"):
            FlatSolver(MonoidAlgebra(privilege_machine()))

    def test_reason_is_always_none(self):
        algebra = _privilege_algebra()
        flat = FlatSolver(algebra)
        x = Variable("X")
        flat.add(constant("k0"), x)
        fact = next(iter(flat.canonical_facts()))
        assert flat.reason(fact) is None
