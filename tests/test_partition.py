"""Sharded solving: determinism and equivalence with the object core.

The load-bearing property mirrors the flat-core suite: sharding is a
pure *distribution* restructuring.  For every constraint set, every
shard count, and cycle elimination on or off, the stitched union of the
per-shard solved forms canonicalizes to exactly the object solver's
solved form.  Determinism is its own contract — the partition is part
of the reproducible-build surface (same program + seed ⇒ identical
shard assignment ⇒ identical per-shard dumps), so the planner must not
depend on hash order or timing.
"""

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import build_cfg
from repro.core.partition import ShardPlan, plan_shards, solve_sharded
from repro.core.solver import Solver
from repro.modelcheck import AnnotatedChecker, file_state_property
from tests.test_flatcore import _canonical, _random_constraints

SHARD_COUNTS = (1, 2, 4)


def _object_solution(algebra, constraints, cycle_elim):
    solver = Solver(algebra, record_reasons=False, cycle_elim=cycle_elim)
    solver.add_many(constraints)
    return solver


class TestPlanDeterminism:
    def test_same_input_same_plan(self):
        algebra, constraints = _random_constraints(7, genkill=False)
        plans = [plan_shards(constraints, algebra, 4) for _ in range(3)]
        for plan in plans[1:]:
            assert plan.assignment == plans[0].assignment
            assert plan.constraint_shard == plans[0].constraint_shard
            assert plan.sizes == plans[0].sizes

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_every_constraint_is_homed(self, shards):
        algebra, constraints = _random_constraints(11, genkill=True)
        plan = plan_shards(constraints, algebra, shards)
        assert isinstance(plan, ShardPlan)
        assert len(plan.constraint_shard) == len(constraints)
        assert all(0 <= home < plan.shards for home in plan.constraint_shard)
        assert sum(plan.sizes) == len(constraints)

    @pytest.mark.parametrize("shards", (2, 4))
    def test_same_seed_same_solved_form(self, shards):
        """Same program + seed ⇒ byte-identical canonical solved form."""
        algebra1, constraints1 = _random_constraints(23, genkill=False)
        algebra2, constraints2 = _random_constraints(23, genkill=False)
        one = solve_sharded(constraints1, algebra1, shards=shards)
        two = solve_sharded(constraints2, algebra2, shards=shards)
        assert one.plan.assignment == two.plan.assignment
        assert sorted(map(repr, one.canonical_facts())) == sorted(
            map(repr, two.canonical_facts())
        )


class TestShardedEqualsObject:
    @given(
        st.integers(min_value=0, max_value=100_000),
        st.booleans(),
        st.booleans(),
        st.sampled_from(SHARD_COUNTS),
    )
    @settings(max_examples=60, deadline=None)
    def test_canonical_form_matches_object_solver(
        self, seed, genkill, cycle_elim, shards
    ):
        algebra, constraints = _random_constraints(seed, genkill)
        sharded = solve_sharded(
            constraints, algebra, shards=shards, cycle_elim=cycle_elim
        )
        obj = _object_solution(algebra, constraints, cycle_elim)
        assert set(sharded.canonical_facts()) == _canonical(obj), seed
        if cycle_elim:
            # Without elimination fact_count() reports raw table rows,
            # and the merged view (rebuilt from canonical facts) holds
            # fewer raw rows than the object closure by construction.
            assert sharded.fact_count() == obj.fact_count(), seed

    def test_exchange_terminates_and_reports(self):
        algebra, constraints = _random_constraints(3, genkill=False)
        sharded = solve_sharded(constraints, algebra, shards=4)
        assert sharded.rounds >= 1
        assert sharded.exchanged >= 0
        stats = sharded.shard_stats()
        assert len(stats) == sharded.shards
        for row in stats:
            assert set(row) >= {"shard", "constraints", "facts", "compositions"}


class TestExecutorPaths:
    """The three transport paths reach the same solved form."""

    def test_thread_executor_matches_serial(self):
        algebra, constraints = _random_constraints(42, genkill=False)
        serial = solve_sharded(constraints, algebra, shards=2)
        with ThreadPoolExecutor(max_workers=2) as pool:
            threaded = solve_sharded(
                constraints, algebra, shards=2, executor=pool
            )
        assert set(serial.canonical_facts()) == set(threaded.canonical_facts())

    def test_process_executor_matches_serial(self):
        """Shards ship as flat v3 dumps and come back equal."""
        algebra, constraints = _random_constraints(42, genkill=False)
        serial = solve_sharded(constraints, algebra, shards=2)
        with ProcessPoolExecutor(max_workers=2) as pool:
            remote = solve_sharded(
                constraints, algebra, shards=2, executor=pool
            )
        assert set(serial.canonical_facts()) == set(remote.canonical_facts())


class TestCheckerIntegration:
    PROGRAM = """
    int helper(int fd) { close(fd); return 0; }
    int main() {
        int fd = open("a");
        helper(fd);
        close(fd);
        return 0;
    }
    """

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_sharded_checker_matches_single(self, shards):
        cfg = build_cfg(self.PROGRAM)
        base = AnnotatedChecker(cfg, file_state_property())
        baseline = base.check()
        sharded = AnnotatedChecker(
            cfg, file_state_property(), shards=shards
        )
        result = sharded.check()
        assert result.has_violation == baseline.has_violation
        assert len(result.violations) == len(baseline.violations)
        assert result.facts == baseline.facts
        if shards > 1:
            assert sharded.sharded is not None
            assert sharded.sharded.shards == shards

    def test_sharded_rejects_warm_start(self):
        cfg = build_cfg(self.PROGRAM)
        base = AnnotatedChecker(cfg, file_state_property())
        base.check()
        with pytest.raises(ValueError):
            AnnotatedChecker(
                cfg, file_state_property(), shards=2, solver=base.solver
            )


class TestPartitionStrategies:
    """Locality-aware vs round-robin placement (``--partition``)."""

    def test_unknown_strategy_is_rejected(self):
        from repro.core.errors import ConstraintError

        algebra, constraints = _random_constraints(7, genkill=False)
        with pytest.raises(ConstraintError):
            plan_shards(constraints, algebra, 2, partition="random")

    @pytest.mark.parametrize("partition", ("greedy", "roundrobin"))
    def test_plan_records_frontier(self, partition):
        algebra, constraints = _random_constraints(17, genkill=False)
        plan = plan_shards(constraints, algebra, 4, partition=partition)
        assert plan.partition == partition
        assert plan.frontier_edges >= 0
        assert len(plan.frontier_per_shard) == plan.shards
        # Every cut edge has exactly two endpoints.
        assert sum(plan.frontier_per_shard) == 2 * plan.frontier_edges

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_greedy_never_cuts_more_than_roundrobin(self, seed):
        algebra, constraints = _random_constraints(seed, genkill=False)
        greedy = plan_shards(constraints, algebra, 4, partition="greedy")
        rrobin = plan_shards(constraints, algebra, 4, partition="roundrobin")
        assert greedy.frontier_edges <= rrobin.frontier_edges, seed

    def test_greedy_strictly_beats_roundrobin_on_structured_graph(self):
        """On a clustered workload (two near-cliques joined by one
        bridge — the shape real call graphs take) locality-aware
        placement must strictly reduce the cut, not just tie it."""
        from repro.core.terms import Variable

        algebra, _ = _random_constraints(1, genkill=False)
        identity = algebra.identity_index
        constraints = []
        for base in (0, 10):
            cluster = [Variable(f"c{base + i}") for i in range(8)]
            for i, a in enumerate(cluster):
                for b in cluster[i + 1 :]:
                    constraints.append((a, b, identity))
        constraints.append((Variable("c0"), Variable("c10"), identity))
        greedy = plan_shards(constraints, algebra, 2, partition="greedy")
        rrobin = plan_shards(constraints, algebra, 2, partition="roundrobin")
        assert greedy.frontier_edges < rrobin.frontier_edges

    @pytest.mark.parametrize("partition", ("greedy", "roundrobin"))
    @pytest.mark.parametrize("genkill", (False, True))
    def test_both_strategies_reach_the_canonical_form(
        self, partition, genkill
    ):
        algebra, constraints = _random_constraints(29, genkill)
        sharded = solve_sharded(
            constraints, algebra, shards=4, partition=partition
        )
        obj = _object_solution(algebra, constraints, cycle_elim=True)
        assert set(sharded.canonical_facts()) == _canonical(obj)

    def test_shard_stats_report_frontier_edges(self):
        algebra, constraints = _random_constraints(3, genkill=False)
        sharded = solve_sharded(constraints, algebra, shards=4)
        for row in sharded.shard_stats():
            assert "frontier_edges" in row
            assert row["frontier_edges"] >= 0
