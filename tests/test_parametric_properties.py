"""Property tests: substitution environments vs explicit simulation.

The lazy substitution-environment representation (§6.4) must be
observationally equivalent to running one explicit copy of the property
machine per concrete label.  We generate random event sequences
(parametric events with labels, plus non-parametric events that drive
every copy) and compare:

* per-label machine states via ``states_of`` against direct simulation;
* acceptance against "any copy accepts".
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parametric import ParametricAlgebra
from repro.dfa.gallery import file_state_machine
from repro.dfa.spec import parse_spec

MIXED_SPEC = """
start state A :
    | bump(x) -> B
    | reset -> A;

state B :
    | bump(x) -> C
    | reset -> A;

accept state C;
"""


def simulate(machine, events):
    """Explicit per-label copies: label -> state, plus the residual copy."""
    states: dict[str, int] = {}
    residual_state = machine.start

    def step_all(symbol):
        nonlocal residual_state
        for label in states:
            states[label] = machine.step(states[label], symbol)
        residual_state = machine.step(residual_state, symbol)

    for symbol, label in events:
        if label is None:
            step_all(symbol)
        else:
            if label not in states:
                states[label] = residual_state  # residual incorporated
            states[label] = machine.step(states[label], symbol)
    return states, residual_state


def compose(algebra, events):
    env = algebra.identity
    for symbol, label in events:
        if label is None:
            env = algebra.then(env, algebra.symbol(symbol))
        else:
            env = algebra.then(env, algebra.symbol(symbol, [label]))
    return env


def event_strategy(symbols_with_params, labels):
    choices = []
    for symbol, parametric in symbols_with_params:
        if parametric:
            for label in labels:
                choices.append((symbol, label))
        else:
            choices.append((symbol, None))
    return st.lists(st.sampled_from(choices), max_size=10)


class TestFileStateEquivalence:
    machine = file_state_machine()
    algebra = ParametricAlgebra(
        machine, {"open": ("x",), "close": ("x",)}
    )

    @given(
        event_strategy(
            [("open", True), ("close", True)], ["fd1", "fd2", "fd3"]
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_states_match_explicit_copies(self, events):
        env = compose(self.algebra, events)
        expected_states, expected_residual = simulate(self.machine, events)
        got = {
            next(iter(key))[1]: state
            for key, state in self.algebra.states_of(env).items()
        }
        for label, state in expected_states.items():
            # labels whose copy is still in the start state may have
            # been normalized away — lookup must still give the state.
            key = frozenset({("x", label)})
            assert env.lookup(key)(self.machine.start) == state, events
        assert env.residual(self.machine.start) == expected_residual


class TestMixedSpecEquivalence:
    machine = parse_spec(MIXED_SPEC).to_dfa()
    algebra = ParametricAlgebra(machine, {"bump": ("x",)})

    @given(
        event_strategy([("bump", True), ("reset", False)], ["p", "q"])
    )
    @settings(max_examples=150, deadline=None)
    def test_acceptance_matches_any_copy(self, events):
        env = compose(self.algebra, events)
        expected_states, expected_residual = simulate(self.machine, events)
        expected_accepting = any(
            state in self.machine.accepting for state in expected_states.values()
        ) or expected_residual in self.machine.accepting
        assert self.algebra.is_accepting(env) == expected_accepting, events

    @given(
        event_strategy([("bump", True), ("reset", False)], ["p", "q"])
    )
    @settings(max_examples=100, deadline=None)
    def test_lookup_matches_per_label_state(self, events):
        env = compose(self.algebra, events)
        expected_states, _residual = simulate(self.machine, events)
        for label, state in expected_states.items():
            key = frozenset({("x", label)})
            assert env.lookup(key)(self.machine.start) == state, events


def test_random_long_sequences_regression():
    """Pinned longer random sequences (beyond hypothesis' sizes)."""
    machine = file_state_machine()
    algebra = ParametricAlgebra(machine, {"open": ("x",), "close": ("x",)})
    rng = random.Random(7)
    labels = [f"fd{i}" for i in range(6)]
    for _trial in range(20):
        events = [
            (rng.choice(["open", "close"]), rng.choice(labels))
            for _ in range(rng.randrange(3, 40))
        ]
        env = compose(algebra, events)
        expected_states, _residual = simulate(machine, events)
        for label, state in expected_states.items():
            key = frozenset({("x", label)})
            assert env.lookup(key)(machine.start) == state
