"""Tests for the Andersen points-to analysis and its naive baseline."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.parser import parse_program
from repro.pointsto import AndersenAnalysis, NaiveAndersen, extract_pointer_ops


def both(source: str):
    program = parse_program(source)
    analysis = AndersenAnalysis(program)
    ops, locations = extract_pointer_ops(program)
    naive = NaiveAndersen(ops, locations)
    return analysis, naive


class TestBasics:
    def test_address_of(self):
        analysis, _ = both("int main() { int x; int *p = &x; }")
        assert analysis.points_to("main::p") == {"main::x"}

    def test_copy(self):
        analysis, _ = both(
            "int main() { int x; int *p = &x; int *q; q = p; }"
        )
        assert analysis.points_to("main::q") == {"main::x"}

    def test_load(self):
        analysis, _ = both(
            """
            int main() {
              int x; int *p = &x; int **pp = &p;
              int *r = *pp;
            }
            """
        )
        assert analysis.points_to("main::r") == {"main::x"}

    def test_store(self):
        analysis, _ = both(
            """
            int main() {
              int x; int y;
              int *p; int **pp = &p;
              *pp = &y;
              int *r = p;
            }
            """
        )
        assert analysis.points_to("main::p") == {"main::y"}
        assert analysis.points_to("main::r") == {"main::y"}

    def test_malloc_per_site(self):
        analysis, _ = both(
            """
            int main() {
              int *a = malloc(4);
              int *b = malloc(4);
            }
            """
        )
        (site_a,) = analysis.points_to("main::a")
        (site_b,) = analysis.points_to("main::b")
        assert site_a != site_b
        assert site_a.startswith("heap@")

    def test_flow_insensitive_join(self):
        analysis, _ = both(
            """
            int main() {
              int x; int y; int *p;
              if (c) { p = &x; } else { p = &y; }
            }
            """
        )
        assert analysis.points_to("main::p") == {"main::x", "main::y"}

    def test_may_alias(self):
        analysis, _ = both(
            """
            int main() {
              int x; int y;
              int *p = &x; int *q = &x; int *r = &y;
            }
            """
        )
        assert analysis.may_alias("main::p", "main::q")
        assert not analysis.may_alias("main::p", "main::r")


class TestInterprocedural:
    def test_param_and_return(self):
        analysis, _ = both(
            """
            int *id(int *a) { return a; }
            int main() { int x; int *p = id(&x); }
            """
        )
        assert analysis.points_to("main::p") == {"main::x"}

    def test_callee_writes_through_pointer(self):
        analysis, _ = both(
            """
            void set(int **slot, int *value) { *slot = value; }
            int main() {
              int x; int *p;
              set(&p, &x);
              int *r = p;
            }
            """
        )
        assert analysis.points_to("main::r") == {"main::x"}

    def test_context_insensitive_conflation(self):
        # Classic Andersen smears across call sites — both solvers must
        # agree on the (imprecise) result.
        analysis, naive = both(
            """
            int *id(int *a) { return a; }
            int main() {
              int x; int y;
              int *p = id(&x);
              int *q = id(&y);
            }
            """
        )
        expected = {"main::x", "main::y"}
        assert analysis.points_to("main::p") == expected
        assert naive.points_to("main::p") == expected

    def test_swap_through_double_pointers(self):
        analysis, _ = both(
            """
            void swap(int *a, int *b) {
              int *t;
              t = *a;
              *a = *b;
              *b = t;
            }
            int main() {
              int x; int y;
              int *p = &x; int *q = &y;
              swap(&p, &q);
            }
            """
        )
        assert analysis.points_to("main::p") == {"main::x", "main::y"}


def random_pointer_program(seed: int) -> str:
    """Random mini-C over &, *, copies, stores, loads, calls, malloc."""
    rng = random.Random(seed)
    base = ["x", "y", "z"]
    pointers = ["p", "q", "r"]
    double = ["pp", "qq"]
    lines = ["void callee(int *a, int **slot) {"]
    for _ in range(rng.randrange(0, 3)):
        lines.append(f"  *slot = a;")
    lines.append("}")
    lines.append("int *give(int *a) { return a; }")
    lines.append("int main() {")
    for name in base:
        lines.append(f"  int {name};")
    for name in pointers:
        lines.append(f"  int *{name};")
    for name in double:
        lines.append(f"  int **{name};")
    statements = []
    for _ in range(rng.randrange(4, 16)):
        roll = rng.random()
        if roll < 0.25:
            statements.append(
                f"{rng.choice(pointers)} = &{rng.choice(base)};"
            )
        elif roll < 0.4:
            statements.append(
                f"{rng.choice(pointers)} = {rng.choice(pointers)};"
            )
        elif roll < 0.5:
            statements.append(
                f"{rng.choice(double)} = &{rng.choice(pointers)};"
            )
        elif roll < 0.6:
            statements.append(
                f"{rng.choice(pointers)} = *{rng.choice(double)};"
            )
        elif roll < 0.7:
            statements.append(
                f"*{rng.choice(double)} = {rng.choice(pointers)};"
            )
        elif roll < 0.8:
            statements.append(f"{rng.choice(pointers)} = malloc(8);")
        elif roll < 0.9:
            statements.append(
                f"callee({rng.choice(pointers)}, {rng.choice(double)});"
            )
        else:
            statements.append(
                f"{rng.choice(pointers)} = give({rng.choice(pointers)});"
            )
    lines.extend(f"  {s}" for s in statements)
    lines.append("  return 0;")
    lines.append("}")
    return "\n".join(lines)


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=60, deadline=None)
def test_set_constraints_match_naive_andersen(seed):
    program = parse_program(random_pointer_program(seed))
    analysis = AndersenAnalysis(program)
    ops, locations = extract_pointer_ops(program)
    naive = NaiveAndersen(ops, locations)
    assert analysis.solution() == naive.solution(), seed


def test_pinned_regression_seeds():
    for seed in (0, 5, 77, 1234):
        program = parse_program(random_pointer_program(seed))
        analysis = AndersenAnalysis(program)
        ops, locations = extract_pointer_ops(program)
        naive = NaiveAndersen(ops, locations)
        assert analysis.solution() == naive.solution(), seed


class TestVariance:
    def test_contravariant_projection_rejected(self):
        import pytest as _pytest

        from repro.core.errors import ConstraintError
        from repro.pointsto.analysis import REF
        from repro.core.terms import Variable

        with _pytest.raises(ConstraintError):
            REF.proj(2, Variable("X"))

    def test_contravariant_meet_under_annotation_rejected(self):
        import pytest as _pytest

        from repro.core.annotations import MonoidAlgebra
        from repro.core.errors import ConstraintError
        from repro.core.solver import Solver
        from repro.core.terms import Variable
        from repro.dfa.gallery import one_bit_machine
        from repro.pointsto.analysis import REF

        algebra = MonoidAlgebra(one_bit_machine())
        solver = Solver(algebra)
        a, b, c, d, x = (Variable(n) for n in "ABCDX")
        solver.add(REF(a, b), x)
        with _pytest.raises(ConstraintError):
            solver.add(x, REF(c, d), algebra.symbol("g"))

    def test_variance_distinguishes_constructors(self):
        from repro.core.terms import Constructor

        plain = Constructor("ref", 2)
        varied = Constructor("ref", 2, variance=(True, False))
        assert plain != varied
