"""E12 — Andersen points-to as set constraints (the §7.5 substrate).

Scales synthetic pointer-heavy programs and compares the set-constraint
encoding (generic solver, ``ref(get, set)`` with a contravariant write
field) against the textbook worklist baseline: identical solutions,
comparable growth — the cubic fragment earning its keep as the
substrate the paper's applications assume.
"""

from __future__ import annotations

import random

import pytest

from benchmarks._util import report, timed
from repro.cfg.parser import parse_program
from repro.pointsto import AndersenAnalysis, NaiveAndersen, extract_pointer_ops


def pointer_program(n_functions: int, statements_per_fn: int, seed: int) -> str:
    rng = random.Random(seed)
    lines = []
    for i in range(n_functions):
        lines.append(f"int *fn{i}(int *a, int **slot) {{")
        lines.append("  int local;")
        lines.append("  int *t;")
        for _ in range(statements_per_fn):
            roll = rng.random()
            if roll < 0.2:
                lines.append("  t = &local;")
            elif roll < 0.4:
                lines.append("  *slot = a;")
            elif roll < 0.55:
                lines.append("  t = *slot;")
            elif roll < 0.7:
                lines.append("  t = malloc(8);")
            elif roll < 0.85 and i > 0:
                j = rng.randrange(i)
                lines.append(f"  t = fn{j}(t, slot);")
            else:
                lines.append("  t = a;")
        lines.append("  return t;")
        lines.append("}")
    lines.append("int main() {")
    lines.append("  int x; int *p = &x; int **pp = &p;")
    for i in range(min(n_functions, 8)):
        lines.append(f"  p = fn{i}(p, pp);")
    lines.append("  return 0;")
    lines.append("}")
    return "\n".join(lines)


SIZES = ((5, 10), (20, 15), (60, 20))


def test_scaling_and_agreement():
    rows = [
        f"{'functions':>10} {'ops':>6} {'locations':>10} "
        f"{'set-constraints (s)':>20} {'naive (s)':>10} {'agree':>6}"
    ]
    for n_functions, statements in SIZES:
        program = parse_program(pointer_program(n_functions, statements, seed=9))
        analysis, constraint_time = timed(AndersenAnalysis, program)
        ops, locations = extract_pointer_ops(program)
        naive, naive_time = timed(NaiveAndersen, ops, locations)
        agree = analysis.solution() == naive.solution()
        rows.append(
            f"{n_functions:10d} {len(ops):6d} {len(locations):10d} "
            f"{constraint_time:20.3f} {naive_time:10.3f} "
            f"{'yes' if agree else 'NO':>6}"
        )
        assert agree
    report("E12_pointsto_scaling", rows)


@pytest.mark.parametrize("size_index", range(len(SIZES)))
def test_set_constraint_andersen_speed(benchmark, size_index):
    n_functions, statements = SIZES[size_index]
    program = parse_program(pointer_program(n_functions, statements, seed=9))
    benchmark.extra_info["functions"] = n_functions
    benchmark.pedantic(
        lambda: AndersenAnalysis(program), rounds=1, iterations=1
    )


@pytest.mark.parametrize("size_index", range(len(SIZES)))
def test_naive_andersen_speed(benchmark, size_index):
    n_functions, statements = SIZES[size_index]
    program = parse_program(pointer_program(n_functions, statements, seed=9))
    ops, locations = extract_pointer_ops(program)
    benchmark.extra_info["functions"] = n_functions
    benchmark.pedantic(
        lambda: NaiveAndersen(ops, locations), rounds=1, iterations=1
    )
