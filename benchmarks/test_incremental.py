"""E14 — §5.1's tradeoff measured: online/separate vs batch solving.

"Bidirectional solving enables separate analysis ... constraints can be
solved online.  Unidirectional solvers defer most processing until the
entire constraint graph is built."  We measure exactly that: a library
is analyzed once, then client batches link against it one at a time.
The bidirectional solver absorbs each batch incrementally (paying only
for the delta); the demand forward solver — faster on any single batch
run — must re-tabulate from scratch every time the constraint set
changes.  The crossover as batches accumulate is the paper's tradeoff
in one table.

Backtracking (BANSHEE-style mark/rollback) is measured alongside:
retracting a speculative batch is O(delta), not a re-solve.
"""

from __future__ import annotations

import pytest

from benchmarks._util import report, timed
from repro.core.annotations import MonoidAlgebra
from repro.core.demand import DemandForwardSolver
from repro.core.solver import Solver
from repro.core.terms import Constructor, Variable, constant
from repro.dfa.gallery import full_privilege_machine
from repro.synth import random_annotated_graph

MACHINE = full_privilege_machine()
N_VARS = 300
LIBRARY_EDGES = 900
BATCH_EDGES = 60
N_BATCHES = 20


def make_batches():
    library = random_annotated_graph(
        MACHINE, N_VARS, LIBRARY_EDGES, seed=2, annotated_fraction=0.4
    )
    batches = [
        random_annotated_graph(
            MACHINE, N_VARS, BATCH_EDGES, seed=100 + i, annotated_fraction=0.4
        ).edges
        for i in range(N_BATCHES)
    ]
    return library, batches


def test_incremental_vs_batch_resolving():
    library, batches = make_batches()
    algebra = MonoidAlgebra(MACHINE)
    variables = [Variable(f"v{i}") for i in range(N_VARS)]
    source = constant("src")

    # --- bidirectional: one online solver, each batch is a delta -----
    solver = Solver(algebra)

    def load_library_bidi():
        for index in library.sources:
            solver.add(source, variables[index])
        for u, v, word in library.edges:
            solver.add(variables[u], variables[v], algebra.word(word))

    _, library_time = timed(load_library_bidi)
    incremental_times = []
    for batch in batches:
        def add_batch(batch=batch):
            for u, v, word in batch:
                solver.add(variables[u], variables[v], algebra.word(word))

        _, elapsed = timed(add_batch)
        incremental_times.append(elapsed)

    # --- demand forward: re-tabulate the whole system per batch ------
    demand_times = []
    accumulated = list(library.edges)
    for batch in batches:
        accumulated.extend(batch)

        def resolve(edges=tuple(accumulated)):
            forward = DemandForwardSolver(MACHINE)
            for index in library.sources:
                forward.add_source("src", variables[index])
            for u, v, word in edges:
                forward.add(variables[u], variables[v], word)
            return forward.solve("src")

        _, elapsed = timed(resolve)
        demand_times.append(elapsed)

    rows = [
        f"library: {LIBRARY_EDGES} constraints, bidirectional initial "
        f"solve {library_time:.3f}s",
        f"{'batch':>6} {'bidi delta (s)':>15} {'demand re-solve (s)':>20}",
    ]
    for i, (inc, dem) in enumerate(zip(incremental_times, demand_times), 1):
        rows.append(f"{i:6d} {inc:15.4f} {dem:20.4f}")
    rows.append(
        f"{'total':>6} {sum(incremental_times):15.4f} "
        f"{sum(demand_times):20.4f}"
    )
    report("E14_incremental_vs_batch", rows)
    # The structural claim: incremental deltas stay flat while batch
    # re-solves grow with the accumulated system, so the totals diverge
    # (Θ(N) vs Θ(N²) in the number of batches).
    assert sum(demand_times) > sum(incremental_times)


def test_backtracking_cost():
    """Retracting a speculative batch costs the delta, not a re-solve."""
    library, batches = make_batches()
    algebra = MonoidAlgebra(MACHINE)
    variables = [Variable(f"v{i}") for i in range(N_VARS)]
    source = constant("src")
    solver = Solver(algebra)
    for index in library.sources:
        solver.add(source, variables[index])
    for u, v, word in library.edges:
        solver.add(variables[u], variables[v], algebra.word(word))
    base_facts = solver.fact_count()

    def speculate_and_retract():
        solver.mark()
        for u, v, word in batches[0]:
            solver.add(variables[u], variables[v], algebra.word(word))
        solver.rollback()

    _, elapsed = timed(speculate_and_retract)
    assert solver.fact_count() == base_facts
    report(
        "E14_backtracking",
        [
            f"library facts: {base_facts}",
            f"speculate+retract one batch: {elapsed:.4f}s "
            "(facts restored exactly)",
        ],
    )


@pytest.mark.parametrize("mode", ["incremental", "batch"])
def test_linking_speed(benchmark, mode):
    library, batches = make_batches()
    algebra = MonoidAlgebra(MACHINE)
    variables = [Variable(f"v{i}") for i in range(N_VARS)]
    source = constant("src")
    benchmark.extra_info["mode"] = mode

    if mode == "incremental":
        solver = Solver(algebra)
        for index in library.sources:
            solver.add(source, variables[index])
        for u, v, word in library.edges:
            solver.add(variables[u], variables[v], algebra.word(word))

        def link_all():
            for batch in batches:
                for u, v, word in batch:
                    solver.add(variables[u], variables[v], algebra.word(word))

        benchmark.pedantic(link_all, rounds=1, iterations=1)
    else:
        def resolve_each_time():
            accumulated = list(library.edges)
            for batch in batches:
                accumulated.extend(batch)
                forward = DemandForwardSolver(MACHINE)
                for index in library.sources:
                    forward.add_source("src", variables[index])
                for u, v, word in accumulated:
                    forward.add(variables[u], variables[v], word)
                forward.solve("src")

        benchmark.pedantic(resolve_each_time, rounds=1, iterations=1)
