"""E9 — §7.6: the dual analysis.

The dual encoding (terms for fields, regular annotations for calls)
must agree with the primal on matched flow for non-recursive programs,
while treating recursion monomorphically.  We also reproduce the
paper's remark that the binary ``pair`` constructor discovers component
edges in one step — measured as solver facts versus the primal.
"""

from __future__ import annotations

import pytest

from benchmarks._util import report, timed
from repro.flow import DualFlowAnalysis, FlowAnalysis

FIG11 = """
pair(y : int) : b = (1@A, y@Y)@P;
main() : int = (pair^i(2@B)).2@V;
"""

TWO_SITES = """
id(y : int) : int = y@Y;
main() : int = (id^i(1@A)@RA, id^j(2@B)@RB)@P;
"""


def chain_program(n_functions: int) -> str:
    lines = []
    for i in range(n_functions):
        lines.append(f"f{i}(y : int) : b{i} = (y@In{i}, {i})@P{i};")
    body = "1@Seed"
    for i in range(n_functions):
        body = f"(f{i}^s{i}({body})).1"
    lines.append(f"main() : int = {body}@V;")
    return "\n".join(lines)


def test_dual_reproduces_sec76_constraints():
    dual = DualFlowAnalysis(FIG11)
    rows = [
        f"call machine states: {dual.machine.n_states}",
        f"B -> V: {dual.flows('B', 'V')}",
        f"A -> V: {dual.flows('A', 'V')}",
    ]
    assert dual.flows("B", "V")
    assert not dual.flows("A", "V")
    report("E9_sec76_dual_fig11", rows)


@pytest.mark.parametrize("source", [FIG11, TWO_SITES], ids=["fig11", "two-sites"])
def test_primal_and_dual_agree_on_matched_flow(source):
    primal = FlowAnalysis(source)
    dual = DualFlowAnalysis(source)
    assert primal.flow_pairs() == dual.flow_pairs()


def test_agreement_on_chains():
    rows = [f"{'chain length':>13} {'primal (s)':>11} {'dual (s)':>9} {'agree':>6}"]
    for size in (2, 4, 8):
        source = chain_program(size)
        primal, primal_time = timed(FlowAnalysis, source)
        dual, dual_time = timed(DualFlowAnalysis, source)
        primal_pairs = primal.flow_pairs()
        dual_pairs = dual.flow_pairs()
        agree = primal_pairs == dual_pairs
        rows.append(
            f"{size:13d} {primal_time:11.3f} {dual_time:9.3f} "
            f"{'yes' if agree else 'NO':>6}"
        )
        assert agree
    report("E9_sec76_dual_agreement", rows)


def test_recursion_is_monomorphic_in_dual():
    source = """
    f(y : int) : int = f^r(y@In)@Out;
    main() : int = f^c(5@S)@R;
    """
    dual = DualFlowAnalysis(source, pn=True)
    # Recursive site r carries the empty annotation; nesting terminates.
    assert dual.sites["r"].recursive
    assert not dual.sites["c"].recursive
    assert dual.flows("S", "In")


def test_fact_counts_primal_vs_dual():
    """The dual's n-ary constructor does component discovery in one
    decomposition; compare the solved-form sizes."""
    rows = [f"{'program':>10} {'primal facts':>13} {'dual facts':>11}"]
    for name, source in (("fig11", FIG11), ("chain8", chain_program(8))):
        primal = FlowAnalysis(source)
        dual = DualFlowAnalysis(source)
        rows.append(
            f"{name:>10} {primal.system.solver.fact_count():13d} "
            f"{dual.solver.fact_count():11d}"
        )
    report("E9_sec76_fact_counts", rows)


@pytest.mark.parametrize("size", [2, 8])
def test_dual_speed(benchmark, size):
    source = chain_program(size)
    benchmark.extra_info["chain"] = size
    benchmark.pedantic(lambda: DualFlowAnalysis(source), rounds=1, iterations=1)
