"""E8 — §7.5: stack-aware alias queries.

Reproduces the paper's example (naive points-to says ``x``/``y`` may
alias; the term intersection says they cannot) and measures the claim
that stack-aware queries come "with almost no cost": the query is an
intersection of solutions the solver already computed.
"""

from __future__ import annotations

import random

import pytest

from benchmarks._util import report, timed
from repro.flow import StackAwareAliasAnalysis


def paper_example() -> StackAwareAliasAnalysis:
    analysis = StackAwareAliasAnalysis()
    analysis.call_addresses(1, {"x": "a", "y": "b"})
    analysis.call_addresses(2, {"x": "b", "y": "a"})
    return analysis


def random_workload(n_sites: int, n_locations: int, seed: int):
    """Many call sites passing random location pairs to x and y."""
    rng = random.Random(seed)
    analysis = StackAwareAliasAnalysis()
    truth_may_alias = False
    for site in range(1, n_sites + 1):
        loc_x = f"l{rng.randrange(n_locations)}"
        loc_y = f"l{rng.randrange(n_locations)}"
        analysis.call_addresses(site, {"x": loc_x, "y": loc_y})
        if loc_x == loc_y:
            truth_may_alias = True
    return analysis, truth_may_alias


def test_paper_example_precision():
    analysis = paper_example()
    rows = [
        f"pt(x) flat = {sorted(analysis.flat_points_to('x'))}",
        f"pt(y) flat = {sorted(analysis.flat_points_to('y'))}",
        f"naive may-alias(x, y)       = {analysis.may_alias_naive('x', 'y')}",
        f"stack-aware may-alias(x, y) = {analysis.may_alias('x', 'y')}",
        f"x terms = {sorted(str(t) for t in analysis.terms('x'))}",
        f"y terms = {sorted(str(t) for t in analysis.terms('y'))}",
    ]
    assert analysis.may_alias_naive("x", "y")
    assert not analysis.may_alias("x", "y")
    report("E8_sec75_alias_example", rows)


def test_stack_aware_matches_per_context_truth():
    """Stack-aware aliasing is exact for this workload family: x and y
    alias iff some single call site passes the same location to both."""
    rows = [f"{'sites':>6} {'naive':>6} {'stack-aware':>12} {'truth':>6}"]
    for seed in range(8):
        analysis, truth = random_workload(n_sites=10, n_locations=6, seed=seed)
        naive = analysis.may_alias_naive("x", "y")
        aware = analysis.may_alias("x", "y")
        rows.append(f"{10:6d} {str(naive):>6} {str(aware):>12} {str(truth):>6}")
        assert aware == truth
        assert naive or not truth  # naive is an over-approximation
    report("E8_sec75_random_precision", rows)


def test_precision_gap_table():
    """How often does stack-awareness refute a naive may-alias?"""
    refuted = total_naive = 0
    for seed in range(40):
        analysis, _truth = random_workload(12, 8, seed)
        if analysis.may_alias_naive("x", "y"):
            total_naive += 1
            if not analysis.may_alias("x", "y"):
                refuted += 1
    rows = [
        f"naive may-alias verdicts: {total_naive}",
        f"refuted by stack-aware queries: {refuted}",
        f"refutation rate: {refuted / max(1, total_naive):.0%}",
    ]
    assert refuted > 0
    report("E8_sec75_precision_gap", rows)


@pytest.mark.parametrize("n_sites", [4, 16, 64])
def test_alias_query_speed(benchmark, n_sites):
    analysis, _truth = random_workload(n_sites, 8, seed=1)
    benchmark.extra_info["sites"] = n_sites
    benchmark(lambda: analysis.may_alias("x", "y"))
