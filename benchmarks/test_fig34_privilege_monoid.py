"""E4 — Figs 3/4 and §8: privilege-property representative functions.

The paper's headline empirical observation about specialization: the
full process-privilege model (11 states, 9 symbols in the paper; 10/9
in our reconstruction) has only 58 (ours: 52) distinct representative
functions, against a worst case of ``|S|^|S|`` in the billions — so the
precomputed composition table stays tiny.
"""

from __future__ import annotations

import pytest

from benchmarks._util import report, timed
from repro.dfa.gallery import full_privilege_machine, privilege_machine
from repro.dfa.monoid import TransitionMonoid


def test_representative_function_counts():
    rows = [
        f"{'machine':24} {'states':>7} {'symbols':>8} "
        f"{'|F_M| measured':>15} {'|S|^|S|':>14} {'paper':>6}"
    ]
    teaching = privilege_machine()
    teaching_monoid = TransitionMonoid(teaching)
    rows.append(
        f"{'Fig 3 (teaching)':24} {teaching.n_states:7d} "
        f"{len(teaching.alphabet):8d} {teaching_monoid.size():15d} "
        f"{teaching.n_states**teaching.n_states:14d} {'—':>6}"
    )
    full = full_privilege_machine()
    full_monoid = TransitionMonoid(full)
    rows.append(
        f"{'Property 1 (full)':24} {full.n_states:7d} "
        f"{len(full.alphabet):8d} {full_monoid.size():15d} "
        f"{full.n_states**full.n_states:14d} {58:6d}"
    )
    assert full.n_states == 10
    assert len(full.alphabet) == 9
    assert full_monoid.size() == 52  # paper reports 58 for its 11-state model
    report("E4_fig34_privilege_monoid", rows)


def test_fig4_representative_functions_reproduced():
    """The Fig 4 sample functions for the teaching model: f0 (acquire),
    f1 (drop), f2 (exec), f_error exist and compose as shown."""
    machine = privilege_machine()
    monoid = TransitionMonoid(machine)
    unpriv, priv = machine.start, machine.run(["seteuid_zero"])
    error = machine.run(["seteuid_zero", "execl"])
    f0 = monoid.generator("seteuid_zero")
    f1 = monoid.generator("seteuid_nonzero")
    f2 = monoid.generator("execl")
    assert f0(unpriv) == priv and f0(priv) == priv and f0(error) == error
    assert f1(unpriv) == unpriv and f1(priv) == unpriv
    assert f2(priv) == error and f2(unpriv) == unpriv
    f_error = monoid.of_word(["seteuid_zero", "execl"])
    assert all(f_error(s) == error for s in (unpriv, priv, error)) or (
        f_error(unpriv) == error
    )
    report(
        "E4_fig4_functions",
        [
            f"f0 = {f0!r}",
            f"f1 = {f1!r}",
            f"f2 = {f2!r}",
            f"f2∘f0 = {monoid.compose(f2, f0)!r} (error from start: "
            f"{monoid.is_accepting(monoid.compose(f2, f0))})",
        ],
    )


def test_specialization_cost(benchmark):
    """Time to 'specialize' — enumerate F_M and build the memo table."""
    machine = full_privilege_machine()
    result = benchmark(lambda: TransitionMonoid(machine).size())
    assert result == 52


def test_composition_is_table_lookup(benchmark):
    """Post-specialization composition should be ~dict-lookup cheap."""
    machine = full_privilege_machine()
    monoid = TransitionMonoid(machine)
    functions = sorted(monoid.elements(), key=lambda f: f.mapping)[:10]
    # warm the memo
    for f in functions:
        for g in functions:
            monoid.then(f, g)

    def lookup_all():
        total = 0
        for f in functions:
            for g in functions:
                total += monoid.then(f, g).mapping[0]
        return total

    benchmark(lookup_all)
