"""E1 — Table 1: process-privilege checking, BANSHEE-style vs MOPS-style.

The paper checks MOPS "Property 1" (our reconstructed 10-state/9-symbol
full-privilege machine) on four packages and reports both checkers'
times.  We regenerate the table over synthetic packages of matching
sizes (see DESIGN.md §5): by default the two large packages run at
1/10 scale (set ``REPRO_BENCH_FULL=1`` for the paper's full 222k/229k
lines).  The claim to reproduce is the *shape*: the generic annotated-
constraint solver is in the same league as the hand-built pushdown
model checker on every package, and both scale to the largest ones.
"""

from __future__ import annotations

import pytest

from benchmarks._util import FULL_SCALE, report, timed
from repro.cfg import build_cfg
from repro.modelcheck import AnnotatedChecker, full_privilege_property
from repro.mops import MopsChecker
from repro.synth import TABLE1_PACKAGES, PackageSpec, generate_package


def bench_specs() -> list[PackageSpec]:
    if FULL_SCALE:
        return list(TABLE1_PACKAGES)
    scaled = []
    for spec in TABLE1_PACKAGES:
        factor = 10 if spec.target_lines > 100_000 else 1
        scaled.append(
            PackageSpec(
                spec.name + ("" if factor == 1 else " (1/10)"),
                spec.target_lines // factor,
                max(8, spec.n_functions // factor),
                seed=spec.seed,
                violation=spec.violation,
            )
        )
    return scaled


@pytest.fixture(scope="module")
def packages():
    built = []
    for spec in bench_specs():
        source = generate_package(spec)
        cfg = build_cfg(source)
        built.append((spec, source.count("\n"), cfg))
    return built


@pytest.fixture(scope="module")
def prop():
    return full_privilege_property()


def test_table1_rows(packages, prop):
    """Regenerate Table 1: size, time per checker, agreement."""
    rows = [
        f"{'Benchmark':34} {'Lines':>8} {'Nodes':>8} "
        f"{'Annotated (s)':>14} {'MOPS (s)':>10} {'Verdicts':>9}"
    ]
    for spec, lines, cfg in packages:
        annotated_result, annotated_time = timed(
            lambda c=cfg: AnnotatedChecker(c, prop).check()
        )
        mops_result, mops_time = timed(lambda c=cfg: MopsChecker(c, prop).check())
        agree = annotated_result.has_violation == mops_result.has_violation
        rows.append(
            f"{spec.name:34} {lines:8d} {cfg.node_count():8d} "
            f"{annotated_time:14.2f} {mops_time:10.2f} "
            f"{'agree' if agree else 'DISAGREE':>9}"
        )
        assert agree
        assert annotated_result.has_violation == spec.violation
    report("E1_table1_privilege", rows)


@pytest.mark.parametrize("index", range(len(bench_specs())))
def test_annotated_checker_speed(benchmark, packages, prop, index):
    spec, _lines, cfg = packages[index]
    benchmark.extra_info["package"] = spec.name
    benchmark.pedantic(
        lambda: AnnotatedChecker(cfg, prop).check(), rounds=1, iterations=1
    )


@pytest.mark.parametrize("index", range(len(bench_specs())))
def test_mops_checker_speed(benchmark, packages, prop, index):
    spec, _lines, cfg = packages[index]
    benchmark.extra_info["package"] = spec.name
    benchmark.pedantic(
        lambda: MopsChecker(cfg, prop).check(), rounds=1, iterations=1
    )
