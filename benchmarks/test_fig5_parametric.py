"""E5 — Fig 5 / §6.4: parametric annotations vs explicit products.

The substitution-environment representation instantiates the file-state
automaton lazily per descriptor.  The explicit alternative (what a
non-parametric encoding must do, and what the MOPS-style baseline does)
is the product machine over all descriptors, whose state space is
``|S|^d``.  We grow the number of descriptors ``d`` and compare both
checkers — the lazy representation's cost tracks the number of
descriptors *live at a time*, not the product space.
"""

from __future__ import annotations

import pytest

from benchmarks._util import report, timed
from repro.cfg import build_cfg
from repro.modelcheck import AnnotatedChecker, file_state_property
from repro.mops import MopsChecker


def descriptor_program(n_descriptors: int, leak: bool = False) -> str:
    lines = ["int main() {"]
    for i in range(n_descriptors):
        lines.append(f'  int fd{i} = open("file{i}", 0);')
    for i in range(n_descriptors):
        if leak and i == n_descriptors - 1:
            continue
        lines.append(f"  close(fd{i});")
    lines.append("  return 0;")
    lines.append("}")
    return "\n".join(lines)


DESCRIPTOR_COUNTS = (1, 2, 4, 8, 16)


#: The explicit product becomes infeasible quickly (3^d control
#: states); the MOPS column is capped there — which is itself the
#: measurement: lazy substitution environments keep going.
MOPS_PRODUCT_CAP = 8


def test_parametric_scaling_table():
    prop = file_state_property()
    rows = [
        f"{'descriptors':>12} {'annotated (s)':>14} {'mops product (s)':>17} "
        f"{'product states':>15}"
    ]
    for count in DESCRIPTOR_COUNTS:
        cfg = build_cfg(descriptor_program(count))
        _result, annotated_time = timed(
            lambda c=cfg: AnnotatedChecker(c, prop).check()
        )
        if count <= MOPS_PRODUCT_CAP:
            mops_checker = MopsChecker(cfg, prop)
            _mops_result, mops_time = timed(mops_checker.check)
            control_states = len(mops_checker.pds.control_states())
            mops_cell = f"{mops_time:17.3f} {control_states:15d}"
        else:
            mops_cell = f"{'(3^%d states: skipped)' % count:>33}"
        rows.append(f"{count:12d} {annotated_time:14.3f} {mops_cell}")
    report("E5_fig5_parametric_scaling", rows)


def test_verdicts_agree_under_parameters():
    prop = file_state_property()
    for count in (1, 3, 6):
        for leak in (False, True):
            cfg = build_cfg(descriptor_program(count, leak=leak))
            annotated = AnnotatedChecker(cfg, prop)
            result = annotated.check()
            mops = MopsChecker(cfg, prop).check()
            # leaking a descriptor is not an Error-state violation (the
            # error is double open/close); both must agree it is clean,
            assert result.has_violation == mops.has_violation
            # ...and the state query must see the leak.
            states = annotated.states_at(cfg.main.exit)
            opened = prop.machine.run(["open"])
            leaked = {
                key
                for key, state_set in states.items()
                if key and opened in state_set
            }
            assert bool(leaked) == leak


@pytest.mark.parametrize("count", DESCRIPTOR_COUNTS)
def test_annotated_parametric_speed(benchmark, count):
    prop = file_state_property()
    cfg = build_cfg(descriptor_program(count))
    benchmark.extra_info["descriptors"] = count
    benchmark.pedantic(
        lambda: AnnotatedChecker(cfg, prop).check(), rounds=1, iterations=1
    )


@pytest.mark.parametrize("count", DESCRIPTOR_COUNTS[:4])
def test_mops_product_speed(benchmark, count):
    prop = file_state_property()
    cfg = build_cfg(descriptor_program(count))
    benchmark.extra_info["descriptors"] = count
    benchmark.pedantic(
        lambda: MopsChecker(cfg, prop).check(), rounds=1, iterations=1
    )
