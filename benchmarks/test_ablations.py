"""E11 — ablations of the solver's design choices (DESIGN.md §3).

Three switches the paper (or its implementation, §8) relies on:

* **liveness pruning** — dropping necessarily-non-accepting annotations
  during closure (justified by minimality of M, §3.1);
* **ε-cycle elimination** — one variable per cycle of identity-annotated
  edges (the cycle-elimination optimization BANSHEE applies, §8);
* **eager vs lazy monoid** — precomputing ``F_M^≡`` with a composition
  table (the specializer) versus composing on demand.

Each is toggled independently; verdicts must not change, fact counts
and times show the effect.
"""

from __future__ import annotations

import pytest

from benchmarks._util import report, timed
from repro.cfg import build_cfg
from repro.core.annotations import MonoidAlgebra
from repro.core.solver import Solver
from repro.core.terms import Constructor, Variable, constant
from repro.dfa.regex import regex_to_dfa
from repro.modelcheck import AnnotatedChecker, full_privilege_property
from repro.synth import PackageSpec, generate_package


@pytest.fixture(scope="module")
def workload_cfg():
    source = generate_package(PackageSpec("ablation", 6000, 90, seed=23))
    return build_cfg(source)


def test_cycle_elimination_ablation(workload_cfg):
    prop = full_privilege_property()
    plain_checker, plain_time = timed(
        lambda: AnnotatedChecker(workload_cfg, prop)
    )
    collapsed_checker, collapsed_time = timed(
        lambda: AnnotatedChecker(workload_cfg, prop, collapse_cycles=True)
    )
    plain_verdict = plain_checker.check().has_violation
    collapsed_verdict = collapsed_checker.check().has_violation
    rows = [
        f"{'configuration':24} {'solve (s)':>10} {'facts':>9} {'variables':>10}",
        f"{'plain':24} {plain_time:10.2f} {plain_checker.solver.fact_count():9d} "
        f"{len(plain_checker.solver.variables()):10d}",
        f"{'ε-cycle elimination':24} {collapsed_time:10.2f} "
        f"{collapsed_checker.solver.fact_count():9d} "
        f"{len(collapsed_checker.solver.variables()):10d}",
    ]
    assert plain_verdict == collapsed_verdict
    assert (
        collapsed_checker.solver.fact_count() <= plain_checker.solver.fact_count()
    )
    report("E11_ablation_cycle_elimination", rows)


def _dead_heavy_workload(solver, algebra, n: int = 120):
    """A chain where half the annotated steps begin dead words."""
    c = constant("c")
    variables = [Variable(f"v{i}") for i in range(n)]
    solver.add(c, variables[0])
    for i in range(n - 1):
        word = "a" if i % 2 == 0 else "b"  # 'b'-first words are dead
        solver.add(variables[i], variables[i + 1], algebra.word(word))
        solver.add(variables[0], variables[i + 1], algebra.word("b"))
    return solver


def test_liveness_pruning_ablation():
    machine = regex_to_dfa("(ab)+")
    algebra = MonoidAlgebra(machine)
    pruned, pruned_time = timed(
        lambda: _dead_heavy_workload(Solver(algebra), algebra)
    )
    unpruned, unpruned_time = timed(
        lambda: _dead_heavy_workload(Solver(algebra, prune_dead=False), algebra)
    )
    rows = [
        f"{'configuration':18} {'solve (s)':>10} {'facts':>8}",
        f"{'pruning on':18} {pruned_time:10.3f} {pruned.fact_count():8d}",
        f"{'pruning off':18} {unpruned_time:10.3f} {unpruned.fact_count():8d}",
    ]
    assert pruned.fact_count() < unpruned.fact_count()
    report("E11_ablation_liveness_pruning", rows)


def test_eager_vs_lazy_monoid(workload_cfg):
    prop = full_privilege_property()
    eager_checker, eager_time = timed(
        lambda: AnnotatedChecker(workload_cfg, prop, eager=True)
    )
    lazy_checker, lazy_time = timed(
        lambda: AnnotatedChecker(workload_cfg, prop, eager=False)
    )
    rows = [
        f"{'monoid mode':12} {'encode+solve (s)':>17} {'facts':>9}",
        f"{'eager':12} {eager_time:17.2f} {eager_checker.solver.fact_count():9d}",
        f"{'lazy':12} {lazy_time:17.2f} {lazy_checker.solver.fact_count():9d}",
    ]
    assert eager_checker.solver.fact_count() == lazy_checker.solver.fact_count()
    report("E11_ablation_monoid_mode", rows)


@pytest.mark.parametrize("collapse", [False, True], ids=["plain", "collapsed"])
def test_checker_speed_with_cycle_elimination(benchmark, workload_cfg, collapse):
    prop = full_privilege_property()
    benchmark.extra_info["collapse_cycles"] = collapse
    benchmark.pedantic(
        lambda: AnnotatedChecker(
            workload_cfg, prop, collapse_cycles=collapse
        ).check(),
        rounds=1,
        iterations=1,
    )
