"""E13 — regenerate the paper's diagram figures as Graphviz files.

Every figure in the paper that is a diagram (as opposed to a table) is
re-emitted under ``benchmarks/results/figures/``:

* Fig 1 — the 1-bit machine ``M_1bit``;
* Fig 2 — the adversarial rotate/swap/merge machine (|S| = 4);
* Fig 3 — the process-privilege automaton (from its §8 spec text);
* Fig 5 — the parametric file-state automaton;
* Fig 10 — the single-level-pair bracket machine;
* Fig 12 — the constraint graph of the Fig 11 program (solved form).

Each test asserts structural facts about the rendered artifact, so the
figures cannot silently drift from the implementation.
"""

from __future__ import annotations

import pathlib

import pytest

from benchmarks._util import RESULTS_DIR
from repro.dfa.gallery import (
    adversarial_machine,
    file_state_spec,
    one_bit_machine,
    pair_machine,
    privilege_spec,
)
from repro.flow import FlowAnalysis
from repro.render import constraint_graph_to_dot, dfa_to_dot

FIGURES_DIR = RESULTS_DIR / "figures"

FIG11 = """
pair(y : int) : b = (1@A, y@Y)@P;
main() : int = (pair^i(2@B)).2@V;
"""


def write_figure(name: str, dot: str) -> pathlib.Path:
    FIGURES_DIR.mkdir(parents=True, exist_ok=True)
    path = FIGURES_DIR / f"{name}.dot"
    path.write_text(dot)
    return path


def test_fig1_one_bit_machine():
    dot = dfa_to_dot(
        one_bit_machine(), state_names={0: "off", 1: "on"}, title="Fig1_M1bit"
    )
    write_figure("fig1_m1bit", dot)
    assert "doublecircle" in dot  # the accepting 'on' state
    assert 'label="g"' in dot


def test_fig2_adversarial_machine():
    dot = dfa_to_dot(adversarial_machine(4), title="Fig2_adversarial")
    write_figure("fig2_adversarial", dot)
    for symbol in ("rotate", "swap", "merge"):
        assert symbol in dot


def test_fig3_privilege_machine():
    spec = privilege_spec()
    names = dict(enumerate(spec.states))
    dot = dfa_to_dot(spec.to_dfa(), state_names=names, title="Fig3_privilege")
    write_figure("fig3_privilege", dot)
    assert "Unpriv" in dot and "Priv" in dot and "Error" in dot
    assert "seteuid_zero" in dot and "execl" in dot


def test_fig5_file_state_machine():
    spec = file_state_spec()
    names = dict(enumerate(spec.states))
    dot = dfa_to_dot(spec.to_dfa(), state_names=names, title="Fig5_file_state")
    write_figure("fig5_file_state", dot)
    assert "Closed" in dot and "Opened" in dot
    assert "open" in dot and "close" in dot


def test_fig10_pair_machine():
    dot = dfa_to_dot(pair_machine(), title="Fig10_pairs")
    write_figure("fig10_pairs", dot)
    # bracket symbols appear as tuple labels
    assert "'['" in dot or "[" in dot


def test_fig12_constraint_graph():
    analysis = FlowAnalysis(FIG11)
    dot = constraint_graph_to_dot(analysis.system.solver, title="Fig12")
    write_figure("fig12_constraint_graph", dot)
    # the o_i call-site constructor boxes of the Fig 12 graph
    assert "o_i" in dot
    assert "shape=box" in dot and "shape=ellipse" in dot


def test_figures_are_valid_dot():
    """Cheap structural validation: balanced braces, digraph headers."""
    for path in sorted(FIGURES_DIR.glob("*.dot")):
        text = path.read_text()
        assert text.startswith("digraph"), path
        assert text.count("{") == text.count("}"), path
