"""E6 — the §6.3 worked example: constraints, resolution, and witness.

Reproduces the paper's walk-through: the six-statement program whose
else-branch forgets to drop privileges.  Verifies the discovered
constraint path ``pc ⊆ S1 ⊆^{f0} S4 ⊆^{f2} S6`` (in our CFG node
naming), prints the witness, and benchmarks the end-to-end check.
"""

from __future__ import annotations

import pytest

from benchmarks._util import report
from repro.cfg import build_cfg
from repro.modelcheck import AnnotatedChecker, simple_privilege_property

PROGRAM = """
int main() {
  seteuid(0);
  if (cond) {
    seteuid(getuid());
  } else {
    other();
  }
  execl("/bin/sh", "sh", 0);
  done();
  return 0;
}
"""


@pytest.fixture(scope="module")
def checker():
    return AnnotatedChecker(build_cfg(PROGRAM), simple_privilege_property())


def test_violation_and_witness(checker):
    result = checker.check(traces=True)
    assert result.has_violation
    violation = min(result.violations, key=lambda v: v.node.id)
    trace_lines = [node.line for node in violation.trace]
    rows = [
        f"violations at lines: {sorted(result.violation_lines())}",
        f"first violation: {violation.describe()}",
        "witness path: "
        + " -> ".join(node.describe() for node in violation.trace),
    ]
    # The witness must take the else branch (line 7) and hit the execl.
    assert 7 in trace_lines
    assert 9 in trace_lines
    assert 5 not in trace_lines
    report("E6_sec63_example", rows)


def test_paper_constraint_path(checker):
    """The pc constant reaches the post-execl point with f_error."""
    algebra = checker.algebra
    f_error = algebra.word(["seteuid_zero", "execl"])
    reach = checker.reachability()
    post_exec_vars = [
        checker.node_var(node)
        for node in checker.cfg.all_nodes()
        if node.line >= 9
    ]
    assert any(
        f_error in reach.annotations_of(var, checker.pc)
        for var in post_exec_vars
    )


def test_check_speed(benchmark):
    cfg = build_cfg(PROGRAM)
    prop = simple_privilege_property()
    benchmark(lambda: AnnotatedChecker(cfg, prop).check())
