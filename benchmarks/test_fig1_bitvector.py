"""E2 — Fig 1 / §3.3: n-bit gen/kill languages as annotations.

Reproduces two claims:

* the 1-bit monoid has exactly 3 representative functions and the
  n-bit product has ``3^n`` — but the lazy tuple representation never
  materializes the ``2^n``-state product machine;
* annotation-based interprocedural dataflow matches the classic
  functional approach on results while both scale with program size
  (the annotated solver additionally exploits order-independence of
  distinct bits, §4).
"""

from __future__ import annotations

import pytest

from benchmarks._util import report, timed
from repro.cfg import build_cfg
from repro.dataflow import AnnotatedBitVectorAnalysis, FunctionalBitVectorAnalysis
from repro.dataflow.problems import call_tracking_problem
from repro.dfa.gallery import bit_vector_machine, one_bit_machine
from repro.dfa.monoid import TransitionMonoid
from repro.synth import PackageSpec, generate_package

PRIMITIVE_POOLS = {
    1: ["seteuid"],
    2: ["seteuid", "execl"],
    4: ["seteuid", "execl", "setuid", "system"],
    8: [
        "seteuid",
        "execl",
        "setuid",
        "system",
        "log_message",
        "read_config",
        "setreuid",
        "getuid",
    ],
}


def test_monoid_sizes():
    rows = [f"{'n bits':>7} {'machine states':>15} {'|F| (=3^n)':>11}"]
    for n in (1, 2, 3, 4):
        machine = bit_vector_machine(n)
        size = TransitionMonoid(machine).size()
        rows.append(f"{n:7d} {machine.n_states:15d} {size:11d}")
        assert size == 3**n
    assert TransitionMonoid(one_bit_machine()).size() == 3
    report("E2_fig1_monoid_sizes", rows)


@pytest.fixture(scope="module")
def program_cfg():
    source = generate_package(PackageSpec("dataflow-bench", 3000, 40, seed=19))
    return build_cfg(source)


def test_dataflow_agreement_and_times(program_cfg):
    rows = [
        f"{'n bits':>7} {'annotated (s)':>14} {'classic (s)':>12} {'agree':>6}"
    ]
    for n, primitives in sorted(PRIMITIVE_POOLS.items()):
        problem = call_tracking_problem(program_cfg, primitives)
        annotated, annotated_time = timed(
            lambda p=problem: AnnotatedBitVectorAnalysis(program_cfg, p).solution()
        )
        classic, classic_time = timed(
            lambda p=problem: FunctionalBitVectorAnalysis(program_cfg, p).solution()
        )
        agree = annotated == classic
        rows.append(
            f"{n:7d} {annotated_time:14.2f} {classic_time:12.2f} "
            f"{'yes' if agree else 'NO':>6}"
        )
        assert agree
    report("E2_fig1_dataflow", rows)


@pytest.mark.parametrize("n_bits", sorted(PRIMITIVE_POOLS))
def test_annotated_dataflow_speed(benchmark, program_cfg, n_bits):
    problem = call_tracking_problem(program_cfg, PRIMITIVE_POOLS[n_bits])
    benchmark.extra_info["bits"] = n_bits
    benchmark.pedantic(
        lambda: AnnotatedBitVectorAnalysis(program_cfg, problem).solution(),
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("n_bits", sorted(PRIMITIVE_POOLS))
def test_classic_dataflow_speed(benchmark, program_cfg, n_bits):
    problem = call_tracking_problem(program_cfg, PRIMITIVE_POOLS[n_bits])
    benchmark.extra_info["bits"] = n_bits
    benchmark.pedantic(
        lambda: FunctionalBitVectorAnalysis(program_cfg, problem).solution(),
        rounds=1,
        iterations=1,
    )
