"""Shared reporting helpers for the benchmark suite.

Every experiment prints its paper-style table and also appends it to
``benchmarks/results/<experiment>.txt`` so runs leave an artifact that
EXPERIMENTS.md can reference.  Set ``REPRO_BENCH_FULL=1`` to run the
Table 1 experiment at the paper's full package sizes (several minutes);
the default uses 1/10-scale stand-ins for the two large packages.
"""

from __future__ import annotations

import os
import pathlib
import time
from typing import Iterable

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

FULL_SCALE = os.environ.get("REPRO_BENCH_FULL", "") == "1"


def report(experiment: str, lines: Iterable[str]) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    banner = f"=== {experiment} ==="
    print(f"\n{banner}\n{text}")
    path = RESULTS_DIR / f"{experiment}.txt"
    stamp = time.strftime("%Y-%m-%d %H:%M:%S")
    with path.open("w") as handle:
        handle.write(f"{banner} ({stamp})\n{text}\n")


def timed(fn, *args, **kwargs):
    """Run ``fn`` once, returning (result, elapsed seconds)."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
