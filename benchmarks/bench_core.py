"""Core solver benchmark: object-mode vs compiled annotation algebras.

Runs a fixed workload matrix over the three solver-bound experiment
families and writes a machine-readable result file:

* ``privilege_*``   — E1 (Table 1): model-check the full-privilege
  property on a synthetic package; object mode solves over
  representative functions with provenance on (the pre-specializer
  default).  ``privilege_diffprop`` runs the object-mode solver over
  table indices with provenance off — the difference-propagation
  drain on the object core.  ``privilege_compiled`` runs the same
  workload on the flat-array core (``repro.core.flatcore``): compiled
  mode *is* the flat core now, so this row is the headline number.
* ``genkill_*``     — E2 (Fig 1 / §3.3): interprocedural n-bit gen/kill
  dataflow; object mode uses the tuple ``ProductAlgebra``, compiled
  mode the packed-int ``CompiledGenKillAlgebra`` on the object core,
  and ``genkill_flat`` the same packed algebra on the flat core (with
  the numpy column backend when numpy is installed).
* ``flow_*``        — E7/E11 (Fig 11 / §7): label-flow analysis of a
  chain of instantiated pair functions; object vs compiled monoid
  algebra over the generated bracket machine.
* ``privilege_cycles_*`` — online cycle elimination ablation: a chain
  of identity-edge rings (``repro.synth.cycle_chain``) solved with the
  online collapser on (``elim``) and off (``noelim``), measured
  round-robin.  Their ``facts`` fields differ by construction (the
  elim run reports the quotient count); equivalence is asserted on the
  canonical solved forms instead.
* ``edit_*``        — incremental re-solving: an
  ``repro.synth.edit_stream`` of single-line edits over one large
  package, answered three ways — ``edit_patch`` (differential repair
  via ``StableCheck.apply_source``), ``edit_cold`` (fresh solve of the
  edited program), ``edit_warm`` (snapshot dump + load of the cold
  solver).  ``wall_s`` is the **median per-edit latency** over the
  stream (a single pass, not best-of-N — the stream is the workload);
  every step asserts the patched solver's canonical solved form equals
  the cold one's, and the full matrix asserts the patch path beats
  both alternatives by at least 5x median.  The durability variants —
  ``edit_patch_journaled`` (every edit write-ahead journaled and
  fsynced before applying), ``edit_recover`` (one-off journal-replay
  cost of a kill -9 restart mid-stream) and ``edit_patch_recovered``
  (per-edit latency on the recovered session) — assert the recovered
  solved form equals both the pre-crash session and a cold solve, and
  gate the journaling overhead at 25% of the unjournaled per-edit
  median (full matrix; the floor is one fsync per edit).
* ``privilege_sharded_k*`` — partitioned solving
  (``repro.core.partition``): the privilege constraint graph split
  into K regions, solved per region, and stitched by the cross-shard
  lower-bound exchange.  Extra keys record the exchange rounds, the
  facts exchanged, and per-shard facts/compositions/ratio rows
  (``per_shard``); the equivalence pass asserts the stitched canonical
  solved form equals both the flat and the object core's.
* ``saturation_scaleout_w*`` — service throughput vs process worker
  count: concurrent clients drive distinct cold privilege checks
  through a :class:`repro.service.dispatch.DispatchPool` of 1/2/4
  worker processes.  ``wall_s`` is the whole batch; extra keys record
  ``requests``, ``requests_per_s``, ``cpus`` (the cores actually
  available — process scaling is physically bounded by it), and
  ``speedup_vs_w1``.  The full matrix asserts >= 1.8x throughput at 4
  workers *when at least 4 cores are available*; on smaller hosts the
  rows are recorded and the gate reports itself skipped.

Output schema (``BENCH_solver.json`` at the repo root by default)::

    {
      "<bench>": {
        "wall_s": <float>,        # best-of-N wall-clock seconds
        "facts": <int>,           # solver.fact_count() after solving
        "compositions": <int>,    # solver.stats.compositions
        "ratio": <float>          # compositions / facts
      },
      ...
    }

``ratio`` is the difference-propagation health metric: with per-bucket
high-water marks every (fact, edge) pair composes exactly once at
fixpoint, so compositions track facts roughly linearly and the ratio
stays at or below ~1 on the diff-prop families at any workload size.
``--compare`` fails if a diff-prop family's ratio exceeds the 1.05
ceiling (a breach means re-composition waste crept back into the
drain loop).

Before writing results the matrix runs an untimed verification pass:
every family is re-solved once with ``track_redundant=True`` and must
report ``redundant_compositions == 0`` at fixpoint, and the flat-core
rows must reach canonical solved forms identical to the object core's
(the flat core is a representation change, never a semantic one).

Bench names are ``<family>_<mode>`` with ``mode`` in ``object`` /
``compiled``; both modes of a family run the identical workload, so
``facts`` must agree between them (asserted here — the specializer is
an equivalence-preserving representation change, §8).
``privilege_compiled_budget`` re-runs the compiled privilege workload
under a generous never-tripping :class:`repro.core.budget.Budget`,
quantifying the resource governor's hot-loop overhead (see
docs/PERFORMANCE.md); it is measured round-robin with
``privilege_compiled`` so machine drift cannot masquerade as governor
cost.

Usage::

    PYTHONPATH=src python benchmarks/bench_core.py             # full matrix
    PYTHONPATH=src python benchmarks/bench_core.py --quick     # CI smoke sizes
    PYTHONPATH=src python benchmarks/bench_core.py --quick \\
        --compare BENCH_solver.json --tolerance 3.0            # regression gate

``--compare`` exits non-zero if any bench shared with the committed
file is slower than ``tolerance ×`` its committed ``wall_s`` — the CI
smoke gate.  Quick-mode workloads are strictly smaller than the
committed full-matrix ones, so the gate only fires on real regressions.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Any

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cfg import build_cfg  # noqa: E402
from repro.core.budget import Budget  # noqa: E402
from repro.core.persist import dump_solver, load_solver  # noqa: E402
from repro.dataflow import AnnotatedBitVectorAnalysis  # noqa: E402
from repro.dataflow.problems import call_tracking_problem  # noqa: E402
from repro.flow import FlowAnalysis  # noqa: E402
from repro.dfa.gallery import privilege_machine  # noqa: E402
from repro.incremental import StableCheck  # noqa: E402
from repro.modelcheck import AnnotatedChecker, full_privilege_property  # noqa: E402
from repro.modelcheck.properties import simple_privilege_property  # noqa: E402
from repro.synth import (  # noqa: E402
    PackageSpec,
    cycle_chain,
    edit_stream,
    generate_package,
    solve_bidirectional,
)

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_solver.json"

PRIMITIVES = [
    "seteuid",
    "execl",
    "setuid",
    "system",
    "log_message",
    "read_config",
    "setreuid",
    "getuid",
]


def wide_flow_program(n_functions: int) -> str:
    """Chain of single-pair functions (benchmarks/test_fig11_flow.py)."""
    lines = []
    for i in range(n_functions):
        lines.append(f"f{i}(y : int) : b{i} = (y@In{i}, {i})@P{i};")
    body = "1@Seed"
    for i in range(n_functions):
        body = f"(f{i}^s{i}({body})).1"
    lines.append(f"main() : int = {body}@V;")
    return "\n".join(lines)


def _row(solver, wall_s: float) -> dict:
    facts = solver.fact_count()
    compositions = solver.stats.compositions
    return {
        "wall_s": round(wall_s, 4),
        "facts": facts,
        "compositions": compositions,
        "ratio": round(compositions / facts, 4) if facts else 0.0,
    }


def _measure(run, repeats: int) -> dict:
    """Best-of-``repeats`` wall time; facts/compositions from the last run."""
    best = float("inf")
    solver = None
    for _ in range(repeats):
        start = time.perf_counter()
        solver = run()
        best = min(best, time.perf_counter() - start)
    return _row(solver, best)


def _measure_interleaved(runs: dict, repeats: int) -> dict[str, dict]:
    """Best-of-``repeats`` for several callables, round-robin.

    Alternating the variants inside one loop makes slow machine drift
    (thermal throttling, noisy neighbors) hit every variant equally, so
    *differences* between them stay meaningful — which is the whole
    point of the budget-overhead pair.  Sequential best-of-N can show a
    20%+ phantom gap between identical workloads on a drifting host.
    """
    best = {name: float("inf") for name in runs}
    solvers: dict = {}
    for _ in range(repeats):
        for name, run in runs.items():
            start = time.perf_counter()
            solvers[name] = run()
            best[name] = min(best[name], time.perf_counter() - start)
    return {name: _row(solvers[name], best[name]) for name in runs}


def _median(samples: list[float]) -> float:
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def run_edit_stream(quick: bool) -> dict[str, dict]:
    """The ``edit_*`` family: differential repair vs its alternatives.

    One pass over an edit stream; at each step the three strategies
    produce (what must be) the same solved session, and each strategy's
    per-edit latency is recorded.  Cold and warm are measured on the
    same edited version the patch just reached, so all three rows
    answer the identical question: "the program changed by one line —
    how long until a solved session for the new version?"
    """
    lines, functions, n_edits = (1_200, 18, 8) if quick else (6_000, 80, 24)
    spec = PackageSpec("bench-edit", lines, functions, seed=4)
    steps = list(edit_stream(spec, n_edits))
    prop = simple_privilege_property()

    live = StableCheck(steps[0].source, prop)
    patch_lat: list[float] = []
    cold_lat: list[float] = []
    warm_lat: list[float] = []
    for step in steps[1:]:
        start = time.perf_counter()
        live.apply_source(step.source)
        patch_lat.append(time.perf_counter() - start)

        start = time.perf_counter()
        cold = StableCheck(step.source, prop)
        cold_lat.append(time.perf_counter() - start)

        blob = dump_solver(cold.solver)
        start = time.perf_counter()
        load_solver(blob)
        warm_lat.append(time.perf_counter() - start)

        assert set(live.solver.canonical_facts()) == set(
            cold.solver.canonical_facts()
        ), f"patched solved form diverged from cold at step {step.step}"

    def row(samples: list[float]) -> dict:
        return _row(live.solver, _median(samples))

    results = {
        "edit_patch": row(patch_lat),
        "edit_cold": row(cold_lat),
        "edit_warm": row(warm_lat),
    }
    patch_med = _median(patch_lat)
    cold_med = _median(cold_lat)
    warm_med = _median(warm_lat)
    if quick:
        # tiny instances leave little room; just require a real win
        assert cold_med > patch_med, (
            f"patch median {patch_med:.4f}s is no faster than cold "
            f"{cold_med:.4f}s"
        )
    else:
        for rival, med in (("cold", cold_med), ("warm", warm_med)):
            assert med >= 5 * patch_med, (
                f"patch median {patch_med:.4f}s is less than 5x faster "
                f"than {rival} {med:.4f}s"
            )
    return results


def run_edit_recovery(quick: bool) -> dict[str, dict]:
    """The ``edit_patch_journaled`` / ``edit_patch_recovered`` family.

    Same edit stream as ``edit_patch``, but every accepted edit is
    write-ahead journaled (``SessionJournal``, fsync batch 1) before it
    is applied — the service tier's durability path.  Mid-stream the
    session "crashes" (journal closed, live solver discarded) and is
    rebuilt by journal replay; the remaining edits patch the recovered
    session.  Three measurements:

    * ``edit_patch_journaled``  — per-edit latency with journaling, the
      durability overhead vs ``edit_patch``;
    * ``edit_recover``          — the one-off replay cost of the
      kill -9 restart;
    * ``edit_patch_recovered``  — per-edit latency *after* recovery,
      which must be indistinguishable from before (the recovered
      session really is the session).

    The recovered solved form is asserted equal to both the pre-crash
    session and a cold solve at every remaining step — the bench-side
    half of the kill -9 acceptance test.
    """
    import tempfile

    from repro.service import SessionJournal, program_hash
    from repro.service.journal import JournalLineage

    lines, functions, n_edits = (1_200, 18, 8) if quick else (6_000, 80, 24)
    spec = PackageSpec("bench-edit", lines, functions, seed=4)
    steps = list(edit_stream(spec, n_edits))
    prop = simple_privilege_property()
    edits = steps[1:]
    mid = len(edits) // 2
    fp = "bench-session"

    plain_lat: list[float] = []
    journaled_lat: list[float] = []
    recovered_lat: list[float] = []
    with tempfile.TemporaryDirectory() as d:
        journal = SessionJournal(d, fsync_every=1)
        plain = StableCheck(steps[0].source, prop)
        live = StableCheck(steps[0].source, prop)
        prev = program_hash(steps[0].source)
        journal.begin(fp, "simple-privilege", prev, steps[0].source)
        for step in edits[:mid]:
            version = program_hash(step.source)
            start = time.perf_counter()
            journal.append(fp, prev, version, step.source, None)
            live.apply_source(step.source)
            journaled_lat.append(time.perf_counter() - start)
            start = time.perf_counter()
            plain.apply_source(step.source)
            plain_lat.append(time.perf_counter() - start)
            prev = version
        journal.close()

        # kill -9: the live solver is gone; only the journal survives
        pre_crash = set(live.solver.canonical_facts())
        del live
        start = time.perf_counter()
        journal = SessionJournal(d, fsync_every=1)
        lineage = journal.load(fp)
        assert isinstance(lineage, JournalLineage), lineage
        recovered = StableCheck(lineage.base_source, prop)
        for record in lineage.patches:
            recovered.apply_source(record["source"])
        recover_s = time.perf_counter() - start
        assert set(recovered.solver.canonical_facts()) == pre_crash, (
            "journal replay did not restore the pre-crash solved form"
        )

        for step in edits[mid:]:
            version = program_hash(step.source)
            start = time.perf_counter()
            journal.append(fp, prev, version, step.source, None)
            recovered.apply_source(step.source)
            recovered_lat.append(time.perf_counter() - start)
            start = time.perf_counter()
            plain.apply_source(step.source)
            plain_lat.append(time.perf_counter() - start)
            prev = version
        journal.close()

        cold = StableCheck(steps[-1].source, prop)
        assert set(recovered.solver.canonical_facts()) == set(
            cold.solver.canonical_facts()
        ), "recovered session diverged from the cold solve at stream end"

        results = {
            "edit_patch_journaled": _row(
                recovered.solver, _median(journaled_lat)
            ),
            "edit_recover": _row(recovered.solver, recover_s),
            "edit_patch_recovered": _row(
                recovered.solver, _median(recovered_lat)
            ),
        }

    plain_med = _median(plain_lat)
    journaled_med = _median(journaled_lat + recovered_lat)
    # journaling (append + fsync ahead of apply) must stay in the noise
    # of the patch itself; the floor is one fsync per edit, so the
    # ceiling leaves room for slow container disks, and tiny quick
    # instances leave more still
    ceiling = 2.0 if quick else 1.25
    assert journaled_med <= ceiling * plain_med, (
        f"journaled per-edit median {journaled_med:.4f}s exceeds "
        f"{ceiling:.2f}x the unjournaled {plain_med:.4f}s"
    )
    if quick:
        # the quick stream leaves only 4 post-recovery edits, so these
        # rows' medians are dominated by which cones those edits hit —
        # run every assertion above but report timings only from the
        # full matrix, keeping the --compare gate meaningful
        return {}
    return results


def run_sharded(cfg, prop, quick: bool) -> dict[str, dict]:
    """The ``privilege_sharded_*`` family: partition + stitch, one process.

    Measured once per configuration (the partition and exchange are
    deterministic, so run-to-run variance is solver wall time only).
    Single-core sharding *loses* to the flat row — the exchange rounds
    and the merge are pure overhead without parallel hardware — which
    is exactly what the row should show; the win is that per-shard
    solves are independent and ship to separate processes.

    ``privilege_sharded_k*`` rows are the round-robin placement
    baseline; ``privilege_sharded_greedy_k4`` runs the locality-aware
    partitioner on the same workload and is *gated*: it must cut
    strictly fewer frontier edges than round-robin at k=4, and both
    placements must canonicalize to the unsharded solver's solved form.
    """
    reference = AnnotatedChecker(cfg, prop, compiled=True, flat=True)
    reference.check()
    unsharded_form = set(reference.solver.canonical_facts())

    def solve(shards: int, partition: str) -> tuple[dict, Any]:
        start = time.perf_counter()
        checker = AnnotatedChecker(
            cfg, prop, compiled=True, shards=shards, partition=partition
        )
        checker.check()
        wall = time.perf_counter() - start
        solution = checker.sharded
        assert set(checker.solver.canonical_facts()) == unsharded_form, (
            f"sharded solve (k={shards}, {partition}) diverged from the "
            "unsharded canonical solved form"
        )
        per_shard = solution.shard_stats()
        compositions = sum(row["compositions"] for row in per_shard)
        facts = checker.solver.fact_count()
        row = {
            "wall_s": round(wall, 4),
            "facts": facts,
            "compositions": compositions,
            "ratio": round(compositions / facts, 4) if facts else 0.0,
            "rounds": solution.rounds,
            "exchanged": solution.exchanged,
            "partition": partition,
            "frontier_edges": solution.plan.frontier_edges,
            "per_shard": per_shard,
        }
        return row, solution

    results: dict[str, dict] = {}
    for shards in (2, 4):
        results[f"privilege_sharded_k{shards}"], _ = solve(
            shards, "roundrobin"
        )
    results["privilege_sharded_greedy_k4"], _ = solve(4, "greedy")
    greedy_cut = results["privilege_sharded_greedy_k4"]["frontier_edges"]
    rrobin_cut = results["privilege_sharded_k4"]["frontier_edges"]
    assert greedy_cut < rrobin_cut, (
        f"greedy partitioning cut {greedy_cut} frontier edge(s) vs "
        f"round-robin's {rrobin_cut} — expected strictly fewer"
    )
    return results


def run_saturation_scaleout(quick: bool) -> dict[str, dict]:
    """The ``saturation_scaleout_w*`` family: pool throughput vs workers.

    Each request is a *distinct* generated package (different seed), so
    every solve is cold — identical programs would measure the worker
    engines' LRU cache, not the solver.  Pool spawn + preload cost is
    excluded (workers are warmed with pings before the clock starts);
    steady-state throughput is the thing being scaled.
    """
    from concurrent.futures import ThreadPoolExecutor
    import os

    from repro.service.dispatch import DispatchPool

    lines, functions, n_requests = (
        (600, 8, 6) if quick else (1_500, 15, 12)
    )
    programs = [
        generate_package(
            PackageSpec(f"bench-saturation-{i}", lines, functions, seed=100 + i)
        )
        for i in range(n_requests)
    ]
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1

    results: dict[str, dict] = {}
    base_wall: float | None = None
    for workers in (1, 2, 4):
        pool = DispatchPool(workers=workers, preload=["full-privilege"])
        try:
            # Spawn + preload every worker before the clock starts.
            warm = [pool.submit("ping", {}) for _ in range(workers)]
            for future, handle in warm:
                pool.collect(future, handle)
            start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=max(4, workers)) as clients:
                futures = [
                    clients.submit(
                        pool.execute,
                        "check",
                        {"program": program, "property": "full-privilege"},
                    )
                    for program in programs
                ]
                responses = [future.result() for future in futures]
            wall = time.perf_counter() - start
        finally:
            pool.shutdown()
        facts = sum(response["facts"] for response in responses)
        row = {
            "wall_s": round(wall, 4),
            "facts": facts,
            "compositions": 0,
            "ratio": 0.0,
            "requests": n_requests,
            "requests_per_s": round(n_requests / wall, 3) if wall else 0.0,
            "workers": workers,
            "cpus": cpus,
        }
        if base_wall is None:
            base_wall = wall
        else:
            row["speedup_vs_w1"] = round(base_wall / wall, 3)
        results[f"saturation_scaleout_w{workers}"] = row
    speedup = results["saturation_scaleout_w4"].get("speedup_vs_w1", 0.0)
    if not quick and cpus >= 4:
        assert speedup >= 1.8, (
            f"saturation_scaleout: 4 workers gave {speedup:.2f}x over 1 "
            f"on {cpus} cores — expected >= 1.8x"
        )
    elif cpus < 4:
        print(
            f"saturation_scaleout: {cpus} cpu(s) available; the "
            ">= 1.8x @ 4 workers gate needs >= 4 cores and was skipped "
            f"(measured {speedup:.2f}x)"
        )
    return results


def run_saturation_shm(cfg, prop, quick: bool) -> dict[str, dict]:
    """The ``saturation_shm_w*`` family: zero-copy vs pickled transfer.

    Each row solves the privilege workload sharded across a real
    process pool twice — once with solved columns coming back as
    shared-memory segment handles, once forced onto the pickled flat
    dump (``REPRO_SHM_DISABLE``) — and records the wire bytes both
    ways.  Gated: the shm path must move >= 10x fewer bytes (it moves
    segment *names*; the dump moves every column), and both paths must
    agree with the unsharded canonical solved form.
    """
    import os
    from concurrent.futures import ProcessPoolExecutor

    from repro.core import shm

    reference = AnnotatedChecker(cfg, prop, compiled=True, flat=True)
    reference.check()
    unsharded_form = set(reference.solver.canonical_facts())

    results: dict[str, dict] = {}
    if not shm.shm_available():
        print("saturation_shm: shared memory unavailable; family skipped")
        return results
    for workers in (2, 4):
        transfers: dict[str, dict] = {}
        walls: dict[str, float] = {}
        facts = 0
        compositions = 0
        for mode in ("shm", "pickle"):
            os.environ.pop(shm.DISABLE_ENV, None)
            if mode == "pickle":
                os.environ[shm.DISABLE_ENV] = "1"
            try:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    start = time.perf_counter()
                    checker = AnnotatedChecker(
                        cfg,
                        prop,
                        compiled=True,
                        shards=workers,
                        shard_executor=pool,
                        partition="greedy",
                    )
                    checker.check()
                    walls[mode] = time.perf_counter() - start
            finally:
                os.environ.pop(shm.DISABLE_ENV, None)
            solution = checker.sharded
            assert solution.transfer["mode"] == mode, (
                f"saturation_shm_w{workers}: expected {mode} transfer, "
                f"measured {solution.transfer['mode']}"
            )
            assert set(checker.solver.canonical_facts()) == unsharded_form, (
                f"saturation_shm_w{workers} ({mode}) diverged from the "
                "unsharded canonical solved form"
            )
            transfers[mode] = solution.transfer
            facts = checker.solver.fact_count()
            compositions = sum(
                row["compositions"] for row in solution.shard_stats()
            )
        shm_bytes = transfers["shm"]["bytes"]
        pickle_bytes = transfers["pickle"]["bytes"]
        reduction = pickle_bytes / shm_bytes if shm_bytes else float("inf")
        assert reduction >= 10.0, (
            f"saturation_shm_w{workers}: shm moved {shm_bytes} wire bytes "
            f"vs pickle's {pickle_bytes} — only {reduction:.1f}x, "
            "expected >= 10x"
        )
        results[f"saturation_shm_w{workers}"] = {
            "wall_s": round(walls["shm"], 4),
            "facts": facts,
            "compositions": compositions,
            "ratio": round(compositions / facts, 4) if facts else 0.0,
            "workers": workers,
            "transfer_bytes": shm_bytes,
            "transfer_bytes_pickle": pickle_bytes,
            "transfer_reduction_x": round(reduction, 1),
            "shm_attaches": transfers["shm"]["shm_attaches"],
            "pickle_fallbacks": transfers["shm"]["pickle_fallbacks"],
            "wall_s_pickle": round(walls["pickle"], 4),
        }
    return results


def run_matrix(quick: bool, repeats: int) -> dict[str, dict]:
    results: dict[str, dict] = {}

    # -- E1: privilege model checking ------------------------------------
    lines, functions = (3_000, 30) if quick else (20_000, 150)
    source = generate_package(
        PackageSpec("bench-privilege", lines, functions, seed=7)
    )
    cfg = build_cfg(source)
    prop = full_privilege_property()

    def privilege(mode: str, budget: Budget | None = None, **kwargs):
        checker = AnnotatedChecker(
            cfg,
            prop,
            compiled=mode != "object",
            flat=mode == "flat",
            record_reasons=mode == "object",
            budget=budget,
            **kwargs,
        )
        checker.check()
        return checker.solver

    results["privilege_object"] = _measure(lambda: privilege("object"), repeats)

    # Three variants of the same compiled workload, interleaved so
    # machine drift hits them equally:
    #   privilege_diffprop        — object core, difference propagation
    #   privilege_compiled        — flat-array core (the headline row)
    #   privilege_compiled_budget — flat core under a generous
    #     (never-tripping) Budget: isolates the resource governor's
    #     hot-loop cost, the per-fact countdown plus one full limit
    #     evaluation per check interval.
    results.update(
        _measure_interleaved(
            {
                "privilege_diffprop": lambda: privilege("diffprop"),
                "privilege_compiled": lambda: privilege("flat"),
                "privilege_compiled_budget": lambda: privilege(
                    "flat", budget=Budget(max_steps=10**9)
                ),
            },
            repeats,
        )
    )
    assert (
        results["privilege_compiled_budget"]["facts"]
        == results["privilege_compiled"]["facts"]
    ), "a non-tripping budget changed the solved form"
    assert (
        results["privilege_diffprop"]["facts"]
        == results["privilege_compiled"]["facts"]
    ), "the flat core changed the privilege fact count"

    # -- E2: n-bit gen/kill dataflow -------------------------------------
    n_bits = 4 if quick else 8
    df_source = generate_package(
        PackageSpec("bench-dataflow", 1_500 if quick else 3_000, 40, seed=19)
    )
    df_cfg = build_cfg(df_source)
    problem = call_tracking_problem(df_cfg, PRIMITIVES[:n_bits])

    def genkill(compiled: bool, flat: bool = False, **kwargs):
        analysis = AnnotatedBitVectorAnalysis(
            df_cfg, problem, compiled=compiled, flat=flat, **kwargs
        )
        analysis.solution()
        return analysis.solver

    results["genkill_object"] = _measure(lambda: genkill(False), repeats)
    results.update(
        _measure_interleaved(
            {
                "genkill_compiled": lambda: genkill(True),
                "genkill_flat": lambda: genkill(True, flat=True),
            },
            repeats,
        )
    )
    assert (
        results["genkill_flat"]["facts"] == results["genkill_compiled"]["facts"]
    ), "the flat core changed the gen/kill fact count"

    # -- E7/E11: Fig 11 label flow ---------------------------------------
    flow_source = wide_flow_program(8 if quick else 14)

    def flow(compiled: bool, **kwargs):
        analysis = FlowAnalysis(flow_source, compiled=compiled, **kwargs)
        assert analysis.flows("Seed", "V")
        return analysis.system.solver

    results["flow_object"] = _measure(lambda: flow(False), repeats)
    results["flow_compiled"] = _measure(lambda: flow(True), repeats)

    # -- cycle elimination ablation --------------------------------------
    n_cycles, size, sources = (4, 12, 12) if quick else (10, 48, 48)
    ring_machine = privilege_machine()
    workload = cycle_chain(
        ring_machine, n_cycles=n_cycles, cycle_size=size, seed=3,
        n_sources=sources,
    )

    results.update(
        _measure_interleaved(
            {
                "privilege_cycles_elim": lambda: solve_bidirectional(
                    ring_machine, workload, cycle_elim=True
                ),
                "privilege_cycles_noelim": lambda: solve_bidirectional(
                    ring_machine, workload, cycle_elim=False
                ),
            },
            repeats,
        )
    )
    # Collapsing is only admissible because it preserves the solution:
    # check it, on the canonical (identity-SCC quotient) solved forms.
    elim_form = set(
        solve_bidirectional(ring_machine, workload, cycle_elim=True)
        .canonical_facts()
    )
    noelim_form = set(
        solve_bidirectional(ring_machine, workload, cycle_elim=False)
        .canonical_facts()
    )
    assert elim_form == noelim_form, (
        "cycle elimination changed the canonical solved form "
        f"({len(elim_form)} vs {len(noelim_form)} facts)"
    )

    # -- fixpoint invariant + cross-core equivalence (untimed) -----------
    # Difference propagation's contract: at fixpoint no (fact, edge)
    # pair has composed twice.  Re-solve every family once with the
    # redundancy tracker on, and hold the flat-core rows to canonical
    # solved forms identical to the object core's.
    flat_priv = privilege("flat", track_redundant=True)
    obj_priv = privilege("diffprop", track_redundant=True)
    assert set(flat_priv.canonical_facts()) == set(obj_priv.canonical_facts()), (
        "flat core diverged from the object core on the privilege workload"
    )
    sharded_priv = AnnotatedChecker(cfg, prop, compiled=True, shards=2)
    sharded_priv.check()
    assert set(sharded_priv.solver.canonical_facts()) == set(
        flat_priv.canonical_facts()
    ), (
        "sharded solving diverged from the flat core on the privilege "
        "workload — the stitched union is not the global closure"
    )
    flat_gk = genkill(True, flat=True, track_redundant=True)
    obj_gk = genkill(True, track_redundant=True)
    assert set(flat_gk.canonical_facts()) == set(obj_gk.canonical_facts()), (
        "flat core diverged from the object core on the gen/kill workload"
    )
    tracked = {
        "privilege_compiled": flat_priv,
        "privilege_diffprop": obj_priv,
        "genkill_flat": flat_gk,
        "genkill_compiled": obj_gk,
        "flow_compiled": flow(True, track_redundant=True),
        "privilege_cycles_elim": solve_bidirectional(
            ring_machine, workload, cycle_elim=True, track_redundant=True
        ),
        "privilege_cycles_noelim": solve_bidirectional(
            ring_machine, workload, cycle_elim=False, track_redundant=True
        ),
    }
    for name, solver in tracked.items():
        redundant = solver.stats.redundant_compositions
        assert redundant == 0, (
            f"{name}: {redundant} redundant compositions at fixpoint — "
            "difference propagation re-composed a (fact, edge) pair"
        )
    print(
        "fixpoint invariant: redundant_compositions == 0 on "
        f"{len(tracked)} tracked workloads; flat ≡ object canonical forms"
    )

    # -- incremental re-solving: patch vs cold vs warm -------------------
    results.update(run_edit_stream(quick))

    # -- durability: journaled edits + kill -9 recovery ------------------
    results.update(run_edit_recovery(quick))

    # -- sharded solving + process-pool saturation -----------------------
    results.update(run_sharded(cfg, prop, quick))
    results.update(run_saturation_scaleout(quick))

    # -- zero-copy result transfer: shm segment handles vs pickle --------
    results.update(run_saturation_shm(cfg, prop, quick))

    for family in ("privilege", "genkill", "flow"):
        obj, comp = results[f"{family}_object"], results[f"{family}_compiled"]
        assert obj["facts"] == comp["facts"], (
            f"{family}: compiled mode derived {comp['facts']} facts, "
            f"object mode {obj['facts']} — the specializer changed semantics"
        )
    return results


def print_table(results: dict[str, dict]) -> None:
    print(
        f"{'bench':26} {'wall_s':>9} {'facts':>9} {'compositions':>13} "
        f"{'ratio':>7}"
    )
    for name, row in results.items():
        print(
            f"{name:26} {row['wall_s']:9.4f} {row['facts']:9d} "
            f"{row['compositions']:13d} {row['ratio']:7.3f}"
        )
    for family in ("privilege", "genkill", "flow"):
        obj = results[f"{family}_object"]["wall_s"]
        comp = results[f"{family}_compiled"]["wall_s"]
        if comp > 0:
            print(f"{family}: compiled speedup {obj / comp:.2f}x")
    if "privilege_diffprop" in results:
        diffprop = results["privilege_diffprop"]["wall_s"]
        flat = results["privilege_compiled"]["wall_s"]
        if flat > 0:
            print(f"privilege: flat core beats object diff-prop {diffprop / flat:.2f}x")
    if "genkill_flat" in results:
        comp = results["genkill_compiled"]["wall_s"]
        flat = results["genkill_flat"]["wall_s"]
        if flat > 0:
            print(f"genkill: flat core beats object core {comp / flat:.2f}x")
    if "privilege_cycles_elim" in results:
        on = results["privilege_cycles_elim"]["wall_s"]
        off = results["privilege_cycles_noelim"]["wall_s"]
        if on > 0:
            print(f"privilege_cycles: cycle-elim speedup {off / on:.2f}x")
    if "edit_patch" in results:
        patch = results["edit_patch"]["wall_s"]
        if patch > 0:
            cold = results["edit_cold"]["wall_s"]
            warm = results["edit_warm"]["wall_s"]
            print(
                f"edit: patch beats cold {cold / patch:.1f}x, "
                f"warm start {warm / patch:.1f}x (median per-edit latency)"
            )
    if "privilege_sharded_k2" in results:
        flat = results["privilege_compiled"]["wall_s"]
        for shards in (2, 4):
            row = results[f"privilege_sharded_k{shards}"]
            print(
                f"privilege_sharded_k{shards}: {row['rounds']} exchange "
                f"round(s), {row['exchanged']} fact(s) exchanged, "
                f"{row['wall_s'] / flat:.2f}x the flat row single-core "
                "(the stitch overhead parallelism must amortize)"
            )
    if "privilege_sharded_greedy_k4" in results:
        greedy = results["privilege_sharded_greedy_k4"]
        rrobin = results["privilege_sharded_k4"]
        print(
            f"partition: greedy min-cut {greedy['frontier_edges']} frontier "
            f"edge(s) vs round-robin {rrobin['frontier_edges']} at k=4 "
            f"({greedy['exchanged']} vs {rrobin['exchanged']} fact(s) "
            "exchanged)"
        )
    for workers in (2, 4):
        name = f"saturation_shm_w{workers}"
        if name not in results:
            continue
        row = results[name]
        print(
            f"{name}: {row['transfer_bytes']} wire byte(s) via shm handles "
            f"vs {row['transfer_bytes_pickle']} pickled "
            f"({row['transfer_reduction_x']:.1f}x reduction, "
            f"{row['shm_attaches']} attach(es))"
        )
    if "saturation_scaleout_w4" in results:
        w1 = results["saturation_scaleout_w1"]
        w4 = results["saturation_scaleout_w4"]
        print(
            f"saturation: {w4.get('speedup_vs_w1', 0.0):.2f}x throughput "
            f"at 4 process workers vs 1 on {w4['cpus']} cpu(s) "
            f"({w1['requests_per_s']:.2f} -> {w4['requests_per_s']:.2f} req/s)"
        )
    if "edit_patch_journaled" in results:
        patch = results["edit_patch"]["wall_s"]
        journaled = results["edit_patch_journaled"]["wall_s"]
        recovered = results["edit_patch_recovered"]["wall_s"]
        if patch > 0:
            print(
                f"edit: journaling overhead {journaled / patch - 1:+.1%}, "
                f"post-recovery patch {recovered / patch - 1:+.1%} vs "
                "edit_patch median"
            )


# Families whose drain loop runs on difference propagation: at
# fixpoint every (fact, edge) pair composes exactly once, which keeps
# compositions/facts at or below ~1 on these workloads at any size
# (measured: 0.66-0.98 quick, 0.78-0.84 full).  --compare gates them
# on an absolute ratio ceiling as well as wall time — unlike wall time
# the ratio is deterministic, so a breach is always a real
# re-composition bug, never CI-runner noise.
DIFFPROP_FAMILIES = (
    "privilege_compiled",
    "privilege_diffprop",
    "genkill_compiled",
    "genkill_flat",
)
RATIO_CEILING = 1.05


def compare(
    results: dict[str, dict], baseline_path: pathlib.Path, tolerance: float
) -> int:
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for name, row in results.items():
        committed = baseline.get(name)
        if committed is None:
            continue
        limit = tolerance * committed["wall_s"]
        if row["wall_s"] > limit:
            failures.append(
                f"{name}: {row['wall_s']:.4f}s exceeds {tolerance:.1f}x "
                f"committed {committed['wall_s']:.4f}s"
            )
        if name in DIFFPROP_FAMILIES and row["ratio"] > RATIO_CEILING:
            failures.append(
                f"{name}: compositions/facts ratio {row['ratio']:.4f} "
                f"exceeds the {RATIO_CEILING:.2f} diff-prop ceiling — "
                "re-composition waste crept back into the drain loop"
            )
    if failures:
        print("REGRESSION:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"no bench exceeded {tolerance:.1f}x its committed wall_s")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small CI-smoke workloads"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="take best-of-N wall time"
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help="result JSON path (default: BENCH_solver.json at repo root)",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="measure and print only"
    )
    parser.add_argument(
        "--compare",
        type=pathlib.Path,
        default=None,
        help="committed BENCH_solver.json to gate against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="fail --compare when wall_s exceeds tolerance x committed",
    )
    args = parser.parse_args(argv)

    results = run_matrix(quick=args.quick, repeats=args.repeats)
    print_table(results)
    if args.compare is not None:
        return compare(results, args.compare, args.tolerance)
    if not args.no_write:
        args.output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
