"""E3 — Fig 2 / §4: the adversarial machine's superexponential monoid.

The rotate/swap/merge machine realizes every one of the ``|S|^|S|``
functions, so ``|F_M^≡|`` is superexponential in the specification —
the paper's worst case for bidirectional solving.  The same table also
shows the unidirectional escape hatch: forward solving only ever needs
``|S|`` derived annotations (Section 5.1).
"""

from __future__ import annotations

import pytest

from benchmarks._util import report, timed
from repro.core.unidirectional import AnnotatedGraph, ForwardSolver
from repro.dfa.gallery import adversarial_machine
from repro.dfa.monoid import TransitionMonoid, monoid_size_lower_bound
from repro.synth import random_annotated_graph
from repro.synth.workloads import solve_bidirectional


def test_monoid_growth():
    rows = [
        f"{'|S|':>4} {'|S|^|S|':>12} {'|F_M| measured':>15} "
        f"{'forward classes':>16}"
    ]
    for n in (1, 2, 3, 4, 5):
        machine = adversarial_machine(n)
        monoid = TransitionMonoid(machine, max_size=5_000)
        size = monoid.size()
        rows.append(
            f"{n:4d} {n**n:12d} {size:15d} {len(monoid.forward_classes()):16d}"
        )
        assert size == n**n
        assert len(monoid.forward_classes()) <= n
    # n = 6 is probed without full enumeration (6^6 = 46656).
    assert monoid_size_lower_bound(adversarial_machine(6), budget=50_000) == 46_656
    rows.append(f"{6:4d} {6**6:12d} {46_656:15d} {'<= 6':>16}")
    report("E3_fig2_monoid_growth", rows)


@pytest.mark.parametrize("n_states", [2, 3, 4])
def test_bidirectional_solving_cost_grows(benchmark, n_states):
    """Bidirectional solve time over the same graph, growing |F|."""
    machine = adversarial_machine(n_states)
    workload = random_annotated_graph(
        machine, n_vars=40, n_edges=200, seed=7, annotated_fraction=0.8
    )
    benchmark.extra_info["monoid"] = n_states**n_states
    benchmark.pedantic(
        lambda: solve_bidirectional(machine, workload), rounds=1, iterations=1
    )


def test_derived_annotation_counts():
    """Bidirectional derived annotations per node vs forward's |S| cap."""
    rows = [
        f"{'|S|':>4} {'|F_M|':>7} {'bidi max anns/node':>19} "
        f"{'fwd max anns/node':>18}"
    ]
    for n in (2, 3, 4):
        machine = adversarial_machine(n)
        workload = random_annotated_graph(
            machine, n_vars=40, n_edges=200, seed=7, annotated_fraction=0.8
        )
        solver = solve_bidirectional(machine, workload)
        bidi_max = 0
        for var in solver.variables():
            per_source: dict = {}
            for src, ann in solver.lower_bounds(var):
                per_source.setdefault(src, set()).add(ann)
            for anns in per_source.values():
                bidi_max = max(bidi_max, len(anns))
        graph = AnnotatedGraph(machine)
        for u, v, word in workload.edges:
            graph.add_edge(u, v, word)
        forward = ForwardSolver(graph)
        forward.solve(workload.sources)
        fwd_max = max((len(s) for s in forward.states.values()), default=0)
        rows.append(f"{n:4d} {n**n:7d} {bidi_max:19d} {fwd_max:18d}")
        assert fwd_max <= n
    report("E3_fig2_derived_annotations", rows)
