"""E7 — Figs 10/11/12 and §7: type-based flow analysis.

Reproduces:

* the Fig 11/12 flow facts (B flows to V; A does not);
* the Fig 10 machine-size scaling: the bracket automaton grows with
  the program's largest type, which is the paper's stated reason a
  bidirectional solver "is unlikely to scale for this problem";
* flow-analysis solving time versus program size.
"""

from __future__ import annotations

import pytest

from benchmarks._util import report, timed
from repro.flow import FlowAnalysis

FIG11 = """
pair(y : int) : b = (1@A, y@Y)@P;
main() : int = (pair^i(2@B)).2@V;
"""


def nested_pair_program(depth: int) -> str:
    """A program whose largest type is a depth-``depth`` pair nest."""
    expr = "1@A"
    for level in range(depth):
        expr = f"({expr}, {level + 2})"
    projections = ".1" * depth
    return f"main() : int = {expr}{projections}@V;"


def wide_program(n_functions: int) -> str:
    """A chain of single-pair functions, each instantiated once; a seed
    value threads through every call and projection."""
    lines = []
    for i in range(n_functions):
        lines.append(f"f{i}(y : int) : b{i} = (y@In{i}, {i})@P{i};")
    body = "1@Seed"
    for i in range(n_functions):
        body = f"(f{i}^s{i}({body})).1"
    lines.append(f"main() : int = {body}@V;")
    return "\n".join(lines)


def test_fig11_flow_facts():
    analysis = FlowAnalysis(FIG11)
    rows = [
        f"machine states (Fig 10): {analysis.machine_states}",
        f"monoid size: {analysis.monoid_size}",
        f"B -> V (paper: yes): {analysis.flows('B', 'V')}",
        f"A -> V (paper: no):  {analysis.flows('A', 'V')}",
        f"all flow pairs: {sorted(analysis.flow_pairs())}",
    ]
    assert analysis.flows("B", "V")
    assert not analysis.flows("A", "V")
    report("E7_fig11_flow_facts", rows)


def test_machine_growth_with_type_depth():
    rows = [
        f"{'type depth':>11} {'machine states':>15} {'monoid size':>12} "
        f"{'analysis (s)':>13}"
    ]
    for depth in (1, 2, 3, 4, 5):
        source = nested_pair_program(depth)
        analysis, elapsed = timed(FlowAnalysis, source)
        rows.append(
            f"{depth:11d} {analysis.machine_states:15d} "
            f"{analysis.monoid_size:12d} {elapsed:13.3f}"
        )
        assert analysis.flows("A", "V")
    report("E7_fig10_machine_growth", rows)


def test_program_size_scaling():
    rows = [f"{'functions':>10} {'labels':>7} {'analysis (s)':>13}"]
    for size in (2, 4, 8, 16):
        source = wide_program(size)
        analysis, elapsed = timed(FlowAnalysis, source)
        rows.append(f"{size:10d} {len(analysis.labels):7d} {elapsed:13.3f}")
        # end-to-end matched flow through the whole chain of calls
        assert analysis.flows("Seed", "V")
    report("E7_flow_scaling", rows)


@pytest.mark.parametrize("depth", [1, 3, 5])
def test_flow_analysis_speed(benchmark, depth):
    source = nested_pair_program(depth)
    benchmark.extra_info["type_depth"] = depth
    benchmark.pedantic(lambda: FlowAnalysis(source), rounds=1, iterations=1)
