"""Service benchmark: cold solve vs in-memory cache vs snapshot warm-start.

The analysis engine's reason to exist is that a long-lived process
amortizes work a one-shot CLI pays every time: compiling the property
machine's monoid, parsing the program, and solving the constraint
system.  This experiment quantifies the three service tiers on a
synthetic package:

* **cold** — fresh engine, first query: parse + encode + solve + query;
* **snapshot-warm** — fresh engine (a restarted server) with a
  snapshot directory: the solved form is reloaded via
  :mod:`repro.core.persist` instead of re-solved;
* **memory-warm** — same engine, repeated query: LRU hit, query only.

End-to-end latency includes parsing the program and running the
violation queries, which every tier pays; the work warm-starting
actually skips is building the solved system (encode + closure vs a
direct reload of the closed facts), so that phase is also measured in
isolation.  Memory-warm is orders of magnitude faster than cold;
snapshot-warm sits in between.
"""

from __future__ import annotations

from benchmarks._util import report, timed
from repro.cfg import build_cfg
from repro.core.persist import load_solver
from repro.modelcheck import PROPERTY_FACTORIES, AnnotatedChecker
from repro.service import AnalysisEngine
from repro.synth.programs import PackageSpec, generate_package

SPEC = PackageSpec("service-bench", target_lines=1_200, n_functions=24, seed=7)
PROPERTY = "simple-privilege"
REPEATS = 5


def best_of(fn, repeats=REPEATS):
    times = []
    result = None
    for _ in range(repeats):
        result, elapsed = timed(fn)
        times.append(elapsed)
    return result, min(times)


def violation_lines(result):
    return {violation["line"] for violation in result["violations"]}


def test_cold_vs_warm_latency(tmp_path):
    program = generate_package(SPEC)

    # cold: a brand-new engine per run, no snapshots anywhere in sight
    cold_result, cold_time = best_of(
        lambda: AnalysisEngine().check(program, PROPERTY)
    )

    # seed the snapshot directory once (a previous server's lifetime)
    AnalysisEngine(snapshot_dir=tmp_path).check(program, PROPERTY)

    # snapshot-warm: fresh engine per run, solved form reloaded from disk
    def snapshot_warm():
        fresh = AnalysisEngine(snapshot_dir=tmp_path)
        result = fresh.check(program, PROPERTY)
        assert fresh.metrics.get("cache.snapshot.warm") == 1
        return result

    snap_result, snap_time = best_of(snapshot_warm)

    # memory-warm: repeated query against one live engine
    engine = AnalysisEngine()
    engine.check(program, PROPERTY)  # populate
    warm_result, warm_time = best_of(lambda: engine.check(program, PROPERTY))

    assert cold_result["has_violation"] == warm_result["has_violation"]
    assert cold_result["has_violation"] == snap_result["has_violation"]
    assert violation_lines(cold_result) == violation_lines(snap_result)
    assert violation_lines(cold_result) == violation_lines(warm_result)

    # the system-build phase is what a snapshot skips: encode + closure
    # from scratch vs a direct reload of the closed facts
    cfg = build_cfg(program)
    prop = PROPERTY_FACTORIES[PROPERTY]()
    _, solve_time = best_of(lambda: AnnotatedChecker(cfg, prop))
    (snapshot_file,) = list(tmp_path.iterdir())
    snapshot_text = snapshot_file.read_text()
    _, load_time = best_of(lambda: load_solver(snapshot_text))

    # the acceptance criterion: warm starts measurably beat cold solving
    assert warm_time < cold_time
    assert snap_time < cold_time
    assert load_time < solve_time

    lines = [
        f"package: {SPEC.target_lines} target lines, {SPEC.n_functions} functions",
        f"property: {PROPERTY}   (best of {REPEATS})",
        "",
        "end-to-end request latency (parse + build + query):",
        f"{'tier':>14}  {'seconds':>10}  {'speedup':>8}",
        f"{'cold':>14}  {cold_time:>10.4f}  {'1.0x':>8}",
        f"{'snapshot-warm':>14}  {snap_time:>10.4f}  {cold_time / snap_time:>7.1f}x",
        f"{'memory-warm':>14}  {warm_time:>10.4f}  {cold_time / warm_time:>7.1f}x",
        "",
        "system-build phase only (what a snapshot skips):",
        f"{'encode + solve':>14}  {solve_time:>10.4f}  {'1.0x':>8}",
        f"{'load snapshot':>14}  {load_time:>10.4f}  {solve_time / load_time:>7.1f}x",
    ]
    report("service_warm", lines)


def test_what_if_is_cheaper_than_resolve():
    """Speculative mark/rollback queries vs re-solving with the delta."""
    program = """
pair(y : int) : b = (1@A, y@Y)@P;
main() : int = (pair^i(2@B)).2@V;
"""
    engine = AnalysisEngine()
    engine.flow(program, query=["B", "V"])  # solve the base once

    def what_if():
        return engine.flow(program, query=["A", "V"], assume=[["A", "B"]])

    result, whatif_time = best_of(what_if)
    assert result["flows"] is True

    def resolve():
        fresh = AnalysisEngine()
        return fresh.flow(program, query=["A", "V"], assume=[["A", "B"]])

    _, resolve_time = best_of(resolve)

    lines = [
        f"{'mode':>22}  {'seconds':>10}",
        f"{'what-if (cached)':>22}  {whatif_time:>10.5f}",
        f"{'re-solve from scratch':>22}  {resolve_time:>10.5f}",
    ]
    report("service_whatif", lines)
    assert whatif_time < resolve_time
