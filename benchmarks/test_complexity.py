"""E10 — §4/§5: complexity scaling of the solvers.

Three measurements:

* **cubic-family scaling in n** — solve random constraint systems of
  growing size with a fixed small machine and fit the growth exponent
  (the paper's bound is ``O(n^3 |F|^2)``; random sparse systems sit
  well below the worst case, so we assert the *fit* stays polynomial
  and report it);
* **scaling in |F|** — the same graph solved under machines with
  growing monoids (the ``|F|^2`` factor);
* **forward vs bidirectional** — the Section 5 punchline: derived
  annotations per node are capped at ``|S|`` for the forward solver
  versus ``|F_M^≡|`` bidirectionally, with the matching time gap.
"""

from __future__ import annotations

import math

import pytest

from benchmarks._util import report, timed
from repro.core.annotations import MonoidAlgebra, UnannotatedAlgebra
from repro.core.solver import Solver
from repro.core.unidirectional import AnnotatedGraph, ForwardSolver
from repro.dfa.gallery import adversarial_machine, one_bit_machine
from repro.synth import random_annotated_graph
from repro.synth.workloads import random_constraint_system, solve_bidirectional


def fit_exponent(xs, ys):
    """Least-squares slope of log(y) against log(x)."""
    logs = [(math.log(x), math.log(max(y, 1e-9))) for x, y in zip(xs, ys)]
    n = len(logs)
    mean_x = sum(x for x, _ in logs) / n
    mean_y = sum(y for _, y in logs) / n
    num = sum((x - mean_x) * (y - mean_y) for x, y in logs)
    den = sum((x - mean_x) ** 2 for x, _ in logs)
    return num / den


def test_scaling_in_n():
    machine = one_bit_machine()
    sizes = [50, 100, 200, 400, 800]
    times = []
    facts = []
    rows = [f"{'n (constraints)':>16} {'solve (s)':>10} {'facts':>9}"]
    for size in sizes:
        solver, elapsed = timed(
            random_constraint_system, machine, max(10, size // 5), size, 0
        )
        times.append(elapsed)
        facts.append(solver.fact_count())
        rows.append(f"{size:16d} {elapsed:10.3f} {solver.fact_count():9d}")
    exponent = fit_exponent(sizes, times)
    rows.append(f"fitted time exponent: {exponent:.2f} (bound: 3)")
    # Random sparse systems stay polynomial, far under the cubic bound.
    assert exponent < 3.5
    report("E10_scaling_in_n", rows)


def test_scaling_in_monoid_size():
    rows = [
        f"{'|S|':>4} {'|F|':>6} {'solve (s)':>10} {'facts':>9} "
        f"{'max anns/pair':>14}"
    ]
    for n in (2, 3, 4):
        machine = adversarial_machine(n)
        workload = random_annotated_graph(
            machine, n_vars=30, n_edges=150, seed=3, annotated_fraction=0.9
        )
        solver, elapsed = timed(solve_bidirectional, machine, workload)
        max_pair = 0
        for var in solver.variables():
            per_source: dict = {}
            for src, ann in solver.lower_bounds(var):
                per_source.setdefault(src, set()).add(ann)
            for anns in per_source.values():
                max_pair = max(max_pair, len(anns))
        rows.append(
            f"{n:4d} {n**n:6d} {elapsed:10.3f} {solver.fact_count():9d} "
            f"{max_pair:14d}"
        )
        assert max_pair <= n**n
    report("E10_scaling_in_F", rows)


def test_forward_vs_bidirectional():
    rows = [
        f"{'|S|':>4} {'bidi (s)':>9} {'fwd (s)':>8} {'bidi facts':>11} "
        f"{'fwd facts':>10}"
    ]
    for n in (2, 3, 4):
        machine = adversarial_machine(n)
        workload = random_annotated_graph(
            machine, n_vars=60, n_edges=400, seed=11, annotated_fraction=0.9
        )
        bidi, bidi_time = timed(solve_bidirectional, machine, workload)
        graph = AnnotatedGraph(machine)
        for u, v, word in workload.edges:
            graph.add_edge(u, v, word)

        def run_forward():
            forward = ForwardSolver(graph)
            forward.solve(workload.sources)
            return forward

        forward, forward_time = timed(run_forward)
        forward_facts = sum(len(s) for s in forward.states.values())
        rows.append(
            f"{n:4d} {bidi_time:9.3f} {forward_time:8.3f} "
            f"{bidi.fact_count():11d} {forward_facts:10d}"
        )
        # The paper's asymptotic claim, observable already at |S|=4:
        # forward keeps at most |S| annotations per node.
        assert all(len(s) <= n for s in forward.states.values())
    report("E10_forward_vs_bidirectional", rows)


def test_unannotated_baseline_comparison():
    """The classical cubic fragment (no annotations) as the reference
    point of Section 4's argument."""
    machine = one_bit_machine()
    workload = random_annotated_graph(
        machine, n_vars=100, n_edges=600, seed=5, annotated_fraction=0.0
    )
    from repro.core.terms import Constructor, Variable

    def solve_unannotated():
        solver = Solver(UnannotatedAlgebra())
        variables = [Variable(f"v{i}") for i in range(workload.n_vars)]
        for index in workload.sources:
            solver.add(Constructor(f"s{index}", 0)(), variables[index])
        for u, v, _word in workload.edges:
            solver.add(variables[u], variables[v])
        return solver

    plain, plain_time = timed(solve_unannotated)
    annotated, annotated_time = timed(solve_bidirectional, machine, workload)
    rows = [
        f"unannotated: {plain_time:.3f}s, {plain.fact_count()} facts",
        f"annotated (identity-only words): {annotated_time:.3f}s, "
        f"{annotated.fact_count()} facts",
    ]
    report("E10_unannotated_baseline", rows)


def test_demand_forward_vs_bidirectional_model_checking():
    """§5's whole-program-vs-separate-analysis tradeoff, end to end:
    the demand forward checker against the bidirectional one on a
    synthetic package, same verdicts, |S|-bounded facts."""
    from repro.cfg import build_cfg
    from repro.modelcheck import (
        AnnotatedChecker,
        DemandChecker,
        full_privilege_property,
    )
    from repro.synth import PackageSpec, generate_package

    prop = full_privilege_property()
    rows = [
        f"{'lines':>7} {'bidi (s)':>9} {'demand (s)':>11} {'bidi facts':>11} "
        f"{'demand facts':>13} {'max states/var':>15}"
    ]
    for lines, functions in ((4000, 60), (12000, 150), (22000, 260)):
        cfg = build_cfg(
            generate_package(PackageSpec("cmp", lines, functions, seed=37))
        )
        bidirectional, bidi_time = timed(
            lambda c=cfg: AnnotatedChecker(c, prop)
        )
        bidi_verdict = bidirectional.check().has_violation

        def run_demand(c=cfg):
            checker = DemandChecker(c, prop)
            checker.has_violation()
            return checker

        demand, demand_time = timed(run_demand)
        solution = demand.solution()
        rows.append(
            f"{lines:7d} {bidi_time:9.2f} {demand_time:11.2f} "
            f"{bidirectional.solver.fact_count():11d} "
            f"{solution.fact_count:13d} "
            f"{solution.max_states_per_variable():15d}"
        )
        assert bidi_verdict == demand.has_violation()
        assert solution.max_states_per_variable() <= prop.machine.n_states
    report("E10_demand_vs_bidirectional_checking", rows)


@pytest.mark.parametrize("size", [100, 400])
def test_solver_speed(benchmark, size):
    machine = one_bit_machine()
    benchmark.extra_info["constraints"] = size
    benchmark.pedantic(
        lambda: random_constraint_system(machine, max(10, size // 5), size, 0),
        rounds=1,
        iterations=1,
    )
